#include "fvc/cli/commands.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fvc/analysis/csa.hpp"
#include "fvc/api/client.hpp"
#include "fvc/api/server.hpp"
#include "fvc/api/session.hpp"
#include "fvc/api/wire.hpp"
#include "fvc/analysis/exact_theory.hpp"
#include "fvc/analysis/planner.hpp"
#include "fvc/analysis/poisson_theory.hpp"
#include "fvc/analysis/uniform_theory.hpp"
#include "fvc/barrier/barrier.hpp"
#include "fvc/cli/checkpointing.hpp"
#include "fvc/cli/command_registry.hpp"
#include "fvc/core/candidate_index.hpp"
#include "fvc/core/cpu_features.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/io/network_io.hpp"
#include "fvc/obs/json_export.hpp"
#include "fvc/obs/prom_export.hpp"
#include "fvc/obs/serve_stats.hpp"
#include "fvc/obs/trace.hpp"
#include "fvc/obs/trace_export.hpp"
#include "fvc/obs/watchdog.hpp"
#include "fvc/opt/greedy_repair.hpp"
#include "fvc/opt/orient_optimizer.hpp"
#include "fvc/report/heatmap.hpp"
#include "fvc/report/table.hpp"
#include "fvc/io/checkpoint.hpp"
#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/parallel_region.hpp"
#include "fvc/sim/phase_scan.hpp"
#include "fvc/sim/sweep.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/sim/threshold_search.hpp"
#include "fvc/stats/rng.hpp"
#include "fvc/track/trajectory.hpp"

namespace fvc::cli {

namespace {

/// The cancellation token of the command currently inside run_command.
/// Written only by run_command (install/clear) and read by the SIGINT
/// trampoline, so request_active_command_stop stays async-signal-safe:
/// lock-free atomics only, no allocation, no locks.
std::atomic<obs::CancellationToken*> g_active_token{nullptr};

/// RAII install/restore of g_active_token around a handler invocation.
/// Restoring (not clearing) keeps well-nested in-process uses correct:
/// a `top` run while a `serve` blocks on another thread hands the slot
/// back to the daemon's token when it finishes.
struct ActiveTokenGuard {
  explicit ActiveTokenGuard(obs::CancellationToken& token)
      : prev_(g_active_token.exchange(&token, std::memory_order_acq_rel)) {}
  ~ActiveTokenGuard() { g_active_token.store(prev_, std::memory_order_release); }
  obs::CancellationToken* const prev_;
};

sim::TrialConfig config_from(const Args& args) {
  sim::TrialConfig cfg;
  cfg.n = args.get_size("n", 500);
  cfg.theta = args.get_double("theta", geom::kHalfPi);
  cfg.profile = core::HeterogeneousProfile::homogeneous(args.get_double("radius", 0.15),
                                                        args.get_double("fov", 2.0));
  cfg.deployment = args.get_bool("poisson", false) ? sim::Deployment::kPoisson
                                                   : sim::Deployment::kUniform;
  if (args.has("grid-side")) {
    cfg.grid_side = args.get_size("grid-side", 32);
  }
  return cfg;
}

core::Network deploy_or_load(CommandContext& ctx) {
  const Args& args = ctx.args();
  obs::MetricsNode& node = ctx.root().child("deploy");
  obs::Span span(node);
  core::Network net = [&] {
    if (args.has("load")) {
      return core::Network(io::load_cameras_file(args.get_string("load", "")));
    }
    const auto profile = core::HeterogeneousProfile::homogeneous(
        args.get_double("radius", 0.15), args.get_double("fov", 2.0));
    stats::Pcg32 rng(args.get_size("seed", 1));
    return deploy::deploy_uniform_network(profile, args.get_size("n", 300), rng);
  }();
  node.set("cameras", static_cast<double>(net.size()));
  node.set("loaded", args.has("load") ? 1.0 : 0.0);
  return net;
}

}  // namespace

void request_active_command_stop() {
  obs::CancellationToken* const token =
      g_active_token.load(std::memory_order_acquire);
  if (token != nullptr) {
    token->request_stop();
  }
}

int cmd_csa(CommandContext& ctx) {
  const Args& args = ctx.args();
  const double n = args.get_double("n", 1000.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  report::Table t({"quantity", "value"});
  t.add_row({"s_Nc (necessary CSA)", report::fmt_sci(analysis::csa_necessary(n, theta))});
  t.add_row({"s_Sc (sufficient CSA)", report::fmt_sci(analysis::csa_sufficient(n, theta))});
  t.add_row({"sectors k_N", std::to_string(analysis::necessary_sector_count(theta))});
  t.add_row({"sectors k_S", std::to_string(analysis::sufficient_sector_count(theta))});
  t.print(ctx.out());
  ctx.root().set("n", n);
  return kExitSuccess;
}

int cmd_plan(CommandContext& ctx) {
  const Args& args = ctx.args();
  const double n = args.get_double("n", 1000.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const double fov = args.get_double("fov", 2.0);
  const double margin = args.get_double("margin", 1.5);
  report::Table t({"plan", "value"});
  t.add_row({"radius for margin*s_Sc",
             report::fmt(analysis::required_radius(analysis::Condition::kSufficient, n,
                                                   theta, fov, margin),
                         4)});
  if (args.has("radius")) {
    const auto profile =
        core::HeterogeneousProfile::homogeneous(args.get_double("radius", 0.1), fov);
    const std::size_t pop = analysis::required_population(
        analysis::Condition::kSufficient, profile, theta, margin, 3, 100000000);
    t.add_row({"population for given radius", std::to_string(pop)});
  }
  t.print(ctx.out());
  ctx.root().set("n", n);
  return kExitSuccess;
}

int cmd_simulate(CommandContext& ctx) {
  const Args& args = ctx.args();
  const sim::TrialConfig cfg = config_from(args);
  const std::size_t trials = args.get_size("trials", 40);
  const std::uint64_t seed = args.get_size("seed", 1);
  sim::RunOptions options;
  options.cancel = &ctx.cancel();
  options.progress = ctx.progress_fn();
  options.metrics = ctx.metrics_child("estimate");
  options.grain = args.get_size("grain", 0);
  const CheckpointOptions ckpt = checkpoint_options_from(args);
  if (!ckpt.unit_driven()) {
    const auto est = sim::estimate_grid_events(cfg, trials, seed,
                                               sim::default_thread_count(), options);
    report::Table t({"event", "probability", "95% CI"});
    const auto row = [&](const char* name, const sim::EventEstimate& e) {
      const auto ci = e.wilson();
      t.add_row({name, report::fmt(e.p(), 3),
                 report::fmt_interval(ci.lo, ci.hi, 3)});
    };
    row("grid meets necessary condition (H_N)", est.necessary);
    row("grid full-view covered", est.full_view);
    row("grid meets sufficient condition (H_S)", est.sufficient);
    t.print(ctx.out());
    return kExitSuccess;
  }
  // Sharded / checkpointed / resumed: drive the run through an explicit
  // unit list and fold the report from the checkpoint document, so it
  // covers resumed work too (and only this shard's slice when sharded).
  CanonicalConfig canon;
  canon.add("cmd", "simulate");
  canon.add("n", static_cast<std::uint64_t>(cfg.n));
  canon.add("theta", cfg.theta);
  canon.add("radius", args.get_double("radius", 0.15));
  canon.add("fov", args.get_double("fov", 2.0));
  canon.add("poisson", static_cast<std::uint64_t>(args.get_bool("poisson", false)));
  if (cfg.grid_side.has_value()) {
    canon.add("grid-side", static_cast<std::uint64_t>(*cfg.grid_side));
  }
  canon.add("trials", static_cast<std::uint64_t>(trials));
  CheckpointSession session(ckpt, "simulate", seed, canon.digest(), trials);
  options.trial_indices = session.pending();
  options.on_trial = [&session](std::uint64_t index, const sim::TrialEvents& events) {
    session.record(index, sim::encode_trial_events(events));
  };
  if (!session.pending().empty()) {
    (void)sim::estimate_grid_events(cfg, trials, seed, sim::default_thread_count(),
                                    options);
  }
  session.finish();
  render_checkpoint_report(ctx.out(), session.checkpoint());
  return kExitSuccess;
}

int cmd_poisson(CommandContext& ctx) {
  const Args& args = ctx.args();
  const double n = args.get_double("n", 500.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const auto profile = core::HeterogeneousProfile::homogeneous(
      args.get_double("radius", 0.15), args.get_double("fov", 2.0));
  report::Table t({"quantity", "value"});
  t.add_row({"P_N (Theorem 3)",
             report::fmt(analysis::prob_point_necessary_poisson(profile, n, theta), 4)});
  t.add_row({"P_S (Theorem 4)",
             report::fmt(analysis::prob_point_sufficient_poisson(profile, n, theta), 4)});
  t.print(ctx.out());
  ctx.root().set("n", n);
  return kExitSuccess;
}

int cmd_exact(CommandContext& ctx) {
  const Args& args = ctx.args();
  const std::size_t n = args.get_size("n", 500);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const auto profile = core::HeterogeneousProfile::homogeneous(
      args.get_double("radius", 0.15), args.get_double("fov", 2.0));
  report::Table t({"per-point probability", "value"});
  t.add_row({"sufficient condition (Sec IV bound)",
             report::fmt(analysis::point_success_sufficient(profile, n, theta), 4)});
  t.add_row({"EXACT full view (Stevens mixture)",
             report::fmt(analysis::prob_point_full_view_uniform(profile, n, theta), 4)});
  t.add_row({"necessary condition (Sec III bound)",
             report::fmt(analysis::point_success_necessary(profile, n, theta), 4)});
  t.print(ctx.out());
  ctx.root().set("n", static_cast<double>(n));
  return kExitSuccess;
}

int cmd_phase(CommandContext& ctx) {
  const Args& args = ctx.args();
  sim::PhaseScanConfig scan;
  scan.base.n = args.get_size("n", 500);
  scan.base.theta = args.get_double("theta", geom::kHalfPi);
  scan.base.profile = core::HeterogeneousProfile::homogeneous(0.2, 2.0);
  scan.q_values = sim::linspace(args.get_double("q-lo", 0.5), args.get_double("q-hi", 3.0),
                                args.get_size("points", 6));
  scan.trials = args.get_size("trials", 30);
  scan.master_seed = args.get_size("seed", 1);
  scan.cancel = &ctx.cancel();
  scan.progress = ctx.progress_fn();
  scan.metrics = ctx.metrics_child("phase");
  const CheckpointOptions ckpt = checkpoint_options_from(args);
  std::optional<CheckpointSession> session;
  if (ckpt.unit_driven()) {
    CanonicalConfig canon;
    canon.add("cmd", "phase");
    canon.add("n", static_cast<std::uint64_t>(scan.base.n));
    canon.add("theta", scan.base.theta);
    canon.add("q-lo", args.get_double("q-lo", 0.5));
    canon.add("q-hi", args.get_double("q-hi", 3.0));
    canon.add("points", static_cast<std::uint64_t>(scan.q_values.size()));
    canon.add("trials", static_cast<std::uint64_t>(scan.trials));
    session.emplace(ckpt, "phase", scan.master_seed, canon.digest(),
                    scan.q_values.size());
    scan.point_indices = session->pending();
    scan.on_point = [&session](const sim::PhasePoint& point) {
      session->record(point.index, sim::encode_phase_point(point));
    };
  }
  std::optional<obs::Span> span;
  if (scan.metrics != nullptr) {
    span.emplace(*scan.metrics);
  }
  std::vector<sim::PhasePoint> points;
  if (!session.has_value() || !session->pending().empty()) {
    points = sim::run_phase_scan(scan);
  }
  if (span.has_value()) {
    span->stop();
  }
  if (scan.metrics != nullptr) {
    const std::size_t requested = session.has_value() ? session->pending().size()
                                                      : scan.q_values.size();
    scan.metrics->set("points_requested", static_cast<double>(requested));
    scan.metrics->set("points_run", static_cast<double>(points.size()));
  }
  if (session.has_value()) {
    session->finish();
    render_checkpoint_report(ctx.out(), session->checkpoint());
    return kExitSuccess;
  }
  report::Table t({"q", "P(H_N)", "P(full view)", "P(H_S)"});
  for (const auto& pt : points) {
    t.add_row({report::fmt(pt.q, 2), report::fmt(pt.events.necessary.p(), 3),
               report::fmt(pt.events.full_view.p(), 3),
               report::fmt(pt.events.sufficient.p(), 3)});
  }
  t.print(ctx.out());
  return kExitSuccess;
}

int cmd_threshold(CommandContext& ctx) {
  const Args& args = ctx.args();
  const sim::TrialConfig base = config_from(args);
  const std::size_t trials = args.get_size("trials", 30);
  const std::size_t repeats = args.get_size("repeats", 4);
  const std::uint64_t seed = args.get_size("seed", 1);
  const std::string event = args.get_string("event", "full-view");
  if (event != "necessary" && event != "full-view" && event != "sufficient") {
    throw std::invalid_argument(
        "--event: expected necessary, full-view, or sufficient");
  }
  sim::ThresholdRepeatConfig rc;
  rc.base.q_lo = args.get_double("q-lo", 0.5);
  rc.base.q_hi = args.get_double("q-hi", 4.0);
  rc.base.target = args.get_double("target", 0.5);
  rc.base.iterations = static_cast<int>(args.get_size("iterations", 6));
  rc.base.seed = seed;
  rc.base.cancel = &ctx.cancel();
  rc.base.progress = ctx.progress_fn();
  rc.repeats = repeats;
  const double csa_n =
      analysis::csa_necessary(static_cast<double>(base.n), base.theta);
  const std::size_t threads = sim::default_thread_count();
  const auto estimator = [&](double q, std::uint64_t step_seed) {
    sim::TrialConfig point_cfg = base;
    point_cfg.profile = base.profile.with_weighted_area(q * csa_n);
    sim::RunOptions opt;
    opt.cancel = &ctx.cancel();
    opt.grain = args.get_size("grain", 0);
    const auto est =
        sim::estimate_grid_events(point_cfg, trials, step_seed, threads, opt);
    if (est.full_view.trials == 0) {
      return 0.0;  // cancelled before any trial ran; the repeat is dropped
    }
    if (event == "necessary") {
      return est.necessary.p();
    }
    if (event == "sufficient") {
      return est.sufficient.p();
    }
    return est.full_view.p();
  };
  // Always run through a session: without --checkpoint it just accumulates
  // the outcomes in memory, giving one render path for plain, sharded and
  // resumed invocations alike.
  CanonicalConfig canon;
  canon.add("cmd", "threshold");
  canon.add("n", static_cast<std::uint64_t>(base.n));
  canon.add("theta", base.theta);
  canon.add("radius", args.get_double("radius", 0.15));
  canon.add("fov", args.get_double("fov", 2.0));
  canon.add("poisson", static_cast<std::uint64_t>(args.get_bool("poisson", false)));
  if (base.grid_side.has_value()) {
    canon.add("grid-side", static_cast<std::uint64_t>(*base.grid_side));
  }
  canon.add("q-lo", rc.base.q_lo);
  canon.add("q-hi", rc.base.q_hi);
  canon.add("target", rc.base.target);
  canon.add("iterations", static_cast<std::uint64_t>(rc.base.iterations));
  canon.add("trials", static_cast<std::uint64_t>(trials));
  canon.add("repeats", static_cast<std::uint64_t>(repeats));
  canon.add("event", event);
  CheckpointSession session(checkpoint_options_from(args), "threshold", seed,
                            canon.digest(), repeats);
  rc.repeat_indices = session.pending();
  rc.on_repeat = [&session](const sim::ThresholdOutcome& outcome) {
    session.record(outcome.index, {outcome.q});
  };
  obs::MetricsNode* node = ctx.metrics_child("threshold");
  std::size_t ran = 0;
  if (!session.pending().empty()) {
    std::optional<obs::Span> span;
    if (node != nullptr) {
      span.emplace(*node);
    }
    ran = sim::run_threshold_repeats(estimator, rc).size();
  }
  if (node != nullptr) {
    node->set("repeats_requested", static_cast<double>(session.pending().size()));
    node->set("repeats_run", static_cast<double>(ran));
  }
  session.finish();
  render_checkpoint_report(ctx.out(), session.checkpoint());
  return kExitSuccess;
}

int cmd_merge_shards(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const std::string inputs = args.get_string("inputs", "");
  if (inputs.empty()) {
    throw std::invalid_argument(
        "merge-shards: --inputs a.ckpt,b.ckpt,... is required");
  }
  std::vector<io::Checkpoint> shards;
  std::size_t start = 0;
  while (start <= inputs.size()) {
    const std::size_t comma = inputs.find(',', start);
    const std::string path =
        inputs.substr(start, comma == std::string::npos ? comma : comma - start);
    if (path.empty()) {
      throw std::invalid_argument("merge-shards: empty path in --inputs");
    }
    shards.push_back(io::load_checkpoint_file(path));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  const io::Checkpoint merged = io::merge_checkpoints(shards);
  if (args.has("output")) {
    const std::string output = args.get_string("output", "");
    io::save_checkpoint_file(output, merged);
    out << "merged checkpoint: wrote " << output << "\n";
  }
  out << "merged " << shards.size() << " shard(s): " << merged.units.size() << "/"
      << merged.total_units << " units\n";
  render_checkpoint_report(out, merged);
  ctx.root().set("shards", static_cast<double>(shards.size()));
  ctx.root().set("units_merged", static_cast<double>(merged.units.size()));
  ctx.root().set("units_total", static_cast<double>(merged.total_units));
  // Non-zero when units are missing, so scripts (and CI) can demand a
  // complete merge without parsing the report.
  return merged.complete() ? kExitSuccess : kExitFailure;
}

int cmd_map(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(ctx);
  if (args.has("save")) {
    io::save_cameras_file(args.get_string("save", ""), net.cameras());
    out << "saved " << net.size() << " cameras to " << args.get_string("save", "")
        << "\n";
  }
  const std::size_t side = args.get_size("side", 48);
  {
    obs::Span span(ctx.root().child("render"));
    std::vector<double> dirs;
    const report::CoverageMap map(side, [&](const geom::Vec2& p) {
      net.viewed_directions_into(p, dirs);
      return core::full_view_covered(dirs, theta).covered ? 1.0 : 0.0;
    });
    map.render_ascii(out);
  }
  out << "('@' = full-view covered, ' ' = not)\n";
  // Metrics-only extra pass: the ASCII map samples cell centers through the
  // point API, so the engine counters come from a metered whole-grid
  // evaluation on a grid of the same side (engine points == side^2).
  if (obs::MetricsNode* node = ctx.metrics_child("region")) {
    obs::Span span(*node);
    const core::DenseGrid grid(side);
    const core::RegionCoverageStats stats = sim::evaluate_region_parallel(
        net, grid, theta, sim::default_thread_count(), args.get_size("grain", 0),
        node);
    node->set("grid_points", static_cast<double>(stats.total_points));
    node->set("covered_1_points", static_cast<double>(stats.covered_1));
    node->set("full_view_points", static_cast<double>(stats.full_view_ok));
  }
  return kExitSuccess;
}

int cmd_barrier(CommandContext& ctx) {
  const Args& args = ctx.args();
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(ctx);
  barrier::BarrierSpec strip;
  strip.y_lo = args.get_double("y-lo", 0.45);
  strip.y_hi = args.get_double("y-hi", 0.55);
  obs::MetricsNode& node = ctx.root().child("barrier");
  const barrier::BarrierResult r = [&] {
    obs::Span span(node);
    return barrier::evaluate_barrier(net, strip, theta);
  }();
  node.set("covered_fraction", r.covered_fraction);
  node.set("weak_held", r.weak ? 1.0 : 0.0);
  node.set("strong_held", r.strong ? 1.0 : 0.0);
  report::Table t({"barrier metric", "value"});
  t.add_row({"strip cells full-view covered", report::fmt(r.covered_fraction, 3)});
  t.add_row({"weak barrier (straight crossings)", r.weak ? "HELD" : "BREACHED"});
  t.add_row({"strong barrier (any crossing path)", r.strong ? "HELD" : "BREACHED"});
  t.print(ctx.out());
  return kExitSuccess;
}

int cmd_track(CommandContext& ctx) {
  const Args& args = ctx.args();
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(ctx);
  stats::Pcg32 rng(args.get_size("seed", 1) ^ 0x77AC4);
  const std::size_t walks = args.get_size("walks", 20);
  double fv = 0.0;
  double facing = 0.0;
  std::size_t captured_walks = 0;
  obs::MetricsNode& node = ctx.root().child("walks");
  {
    obs::Span span(node);
    for (std::size_t w = 0; w < walks; ++w) {
      const track::Trajectory path = track::random_waypoint_path(rng, 4, 0.02);
      const track::TrackReport r = track::evaluate_trajectory(net, path, theta);
      fv += r.full_view_fraction();
      facing += r.facing_captured_fraction();
      captured_walks += r.first_capture.has_value() ? 1 : 0;
    }
  }
  node.set("walks", static_cast<double>(walks));
  node.set("captured_walks", static_cast<double>(captured_walks));
  report::Table t({"tracking metric", "value"});
  t.add_row({"mean path full-view fraction", report::fmt(fv / static_cast<double>(walks), 3)});
  t.add_row({"mean facing-captured fraction",
             report::fmt(facing / static_cast<double>(walks), 3)});
  t.add_row({"walks with at least one capture",
             std::to_string(captured_walks) + "/" + std::to_string(walks)});
  t.print(ctx.out());
  return kExitSuccess;
}

int cmd_repair(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(ctx);
  const core::DenseGrid grid(args.get_size("grid-side", 20));
  opt::RepairConfig cfg;
  cfg.theta = theta;
  cfg.camera_radius = args.get_double("radius", 0.2);
  cfg.camera_fov = args.get_double("fov", 2.0);
  obs::MetricsNode& node = ctx.root().child("repair");
  const opt::RepairResult result = [&] {
    obs::Span span(node);
    return opt::repair_full_view(net, grid, cfg);
  }();
  node.set("initial_holes", static_cast<double>(result.initial_holes));
  node.set("cameras_added", static_cast<double>(result.added.size()));
  node.set("success", result.success ? 1.0 : 0.0);
  report::Table t({"repair metric", "value"});
  t.add_row({"grid points failing before", std::to_string(result.initial_holes)});
  t.add_row({"patch cameras added", std::to_string(result.added.size())});
  t.add_row({"grid fully covered after", result.success ? "YES" : "NO (budget hit)"});
  t.print(out);
  if (args.has("save")) {
    const core::Network fixed = opt::apply_repair(net, result);
    io::save_cameras_file(args.get_string("save", ""), fixed.cameras());
    out << "saved " << fixed.size() << " cameras to " << args.get_string("save", "")
        << "\n";
  }
  return result.success ? kExitSuccess : kExitFailure;
}

int cmd_aim(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(ctx);
  const core::DenseGrid grid(args.get_size("grid-side", 16));
  opt::AimConfig cfg;
  cfg.theta = theta;
  cfg.candidates = args.get_size("candidates", 12);
  obs::MetricsNode& node = ctx.root().child("aim");
  const opt::AimResult result = [&] {
    obs::Span span(node);
    return opt::optimize_orientations(net, grid, cfg);
  }();
  node.set("initial_covered", static_cast<double>(result.initial_covered));
  node.set("final_covered", static_cast<double>(result.final_covered));
  node.set("reorientations", static_cast<double>(result.reorientations));
  node.set("sweeps", static_cast<double>(result.sweeps_used));
  report::Table t({"aiming metric", "value"});
  t.add_row({"grid points covered before", std::to_string(result.initial_covered)});
  t.add_row({"grid points covered after", std::to_string(result.final_covered)});
  t.add_row({"cameras re-aimed", std::to_string(result.reorientations)});
  t.add_row({"sweeps", std::to_string(result.sweeps_used)});
  t.print(out);
  if (args.has("save")) {
    io::save_cameras_file(args.get_string("save", ""), result.cameras);
    out << "saved " << result.cameras.size() << " cameras to "
        << args.get_string("save", "") << "\n";
  }
  return kExitSuccess;
}

int cmd_serve(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    throw std::invalid_argument("serve: --socket PATH is required");
  }
  const std::uint64_t metrics_every_ms = args.get_size("metrics-every", 0);
  if (metrics_every_ms > 0 && !ctx.metrics_requested()) {
    throw std::invalid_argument("serve: --metrics-every needs --metrics FILE");
  }
  const std::string prom_path = args.get_string("prom", "");
  if (args.has("prom") && prom_path.empty()) {
    throw std::invalid_argument("serve: --prom needs a file path");
  }
  const std::uint64_t prom_every_ms = args.get_size("prom-every", 1000);
  const core::Network net = deploy_or_load(ctx);

  api::SessionConfig scfg;
  scfg.cameras.assign(net.cameras().begin(), net.cameras().end());
  scfg.theta = args.get_double("theta", geom::kHalfPi);
  scfg.grid_side = args.get_size("grid-side", 64);
  scfg.tile_rows = args.get_size("tile-rows", 8);
  scfg.cache_tiles = args.get_size("cache-tiles", 1024);
  scfg.grain = args.get_size("grain", 1);
  scfg.metrics = ctx.metrics_child("session");
  scfg.progress = ctx.progress_fn();
  api::Session session(std::move(scfg));

  obs::ServeStats stats;
  if (ctx.watchdog() != nullptr) {
    obs::Watchdog* wd = ctx.watchdog();
    stats.set_stall_source([wd] { return wd->stalls_flagged(); });
  }
  api::ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.stats = &stats;
  cfg.batch_max = args.get_size("batch-max", 256);
  cfg.batch_window_us = args.get_size("batch-window-us", 0);
  // The tile-cache mirror refresh for the periodic Prometheus export;
  // runs under the session mutex like every tick (see PeriodicTask).
  const auto refresh_cache_mirror = [&session, &stats] {
    const api::TileCacheStats& cs = session.cache_stats();
    obs::CacheMirror m;
    m.hits = cs.hits;
    m.misses = cs.misses;
    m.evictions = cs.evictions;
    m.carried_forward = cs.carried_forward;
    m.tiles = session.cache().size();
    m.capacity = session.cache().capacity();
    m.bytes = session.cache().approx_bytes();
    stats.note_cache(m);
  };
  if (metrics_every_ms > 0) {
    const std::string metrics_path = args.get_string("metrics", "");
    cfg.ticks.push_back(
        {metrics_every_ms, [&ctx, metrics_path] {
           obs::write_json_file_atomic(metrics_path, ctx.metrics());
         }});
  }
  if (!prom_path.empty()) {
    cfg.ticks.push_back({prom_every_ms, [&stats, &refresh_cache_mirror, prom_path] {
                           refresh_cache_mirror();
                           // The export must not move a stats poller's
                           // deltas, so it never advances the baseline.
                           obs::write_prometheus_file_atomic(
                               prom_path, stats.snapshot(/*advance_baseline=*/false));
                         }});
  }
  out << "serving " << session.camera_count() << " cameras (digest "
      << session.digest_hex() << ", grid " << session.grid_side() << "x"
      << session.grid_side() << ") on " << socket_path << "\n";
  out.flush();  // the smoke harness waits for this line before connecting
  const api::ServeReport report = [&] {
    obs::MetricsNode& node = ctx.root().child("serve");
    obs::Span span(node);
    api::ServeReport r = api::serve(session, cfg, ctx.cancel());
    node.set("connections", static_cast<double>(r.connections));
    node.set("requests", static_cast<double>(r.requests));
    node.set("errors", static_cast<double>(r.errors));
    return r;
  }();
  if (!prom_path.empty()) {
    // Final export so the file reflects the whole run, drain included.
    refresh_cache_mirror();
    obs::write_prometheus_file_atomic(prom_path,
                                      stats.snapshot(/*advance_baseline=*/false));
  }
  report::Table t({"serve metric", "value"});
  t.add_row({"connections", std::to_string(report.connections)});
  t.add_row({"requests served", std::to_string(report.requests)});
  t.add_row({"error responses", std::to_string(report.errors)});
  const api::TileCacheStats& cs = session.cache_stats();
  t.add_row({"tile cache hits", std::to_string(cs.hits)});
  t.add_row({"tile cache misses", std::to_string(cs.misses)});
  t.add_row({"tile cache evictions", std::to_string(cs.evictions)});
  t.add_row({"tiles carried across edits", std::to_string(cs.carried_forward)});
  t.print(out);
  // The accept loop only exits on cancellation, so run_command's
  // cancelled && code == 0 path reports kExitCancelled (130) — the clean
  // SIGINT drain the CI smoke leg asserts on.
  return kExitSuccess;
}

int cmd_top(CommandContext& ctx) {
  const Args& args = ctx.args();
  std::ostream& out = ctx.out();
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    throw std::invalid_argument("top: --socket PATH is required");
  }
  const bool once = args.get_bool("once", false);
  const bool raw_json = args.get_bool("json", false);
  const std::uint64_t interval_ms = std::max<std::uint64_t>(
      args.get_size("interval-ms", 1000), 50);
  const std::size_t count = once ? 1 : args.get_size("count", 0);

  api::Client client(socket_path);  // throws when nothing is listening

  const auto fmt1 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };

  // Rates come from successive *totals*, client-side — robust against
  // other stats pollers (each poll advances the daemon's delta baseline,
  // so the wire deltas belong to whoever polled last, not to us).
  struct PrevPoll {
    bool valid = false;
    std::uint64_t ns = 0;
    std::array<double, obs::kReqTypeCount> counts{};
  };
  PrevPoll prev;
  std::size_t polls = 0;
  while (!ctx.cancel().stop_requested()) {
    const std::optional<std::string> response = client.try_request("{\"op\":\"stats\"}");
    if (!response.has_value()) {
      out << "top: daemon hung up\n";
      return polls > 0 ? kExitSuccess : kExitFailure;
    }
    const std::uint64_t now = obs::monotonic_ns();
    const api::WireObject obj = api::parse_flat_object(*response);
    if (!api::get_bool(obj, "ok")) {
      out << "top: stats error: " << api::get_string(obj, "error") << "\n";
      return kExitFailure;
    }
    ++polls;
    if (raw_json) {
      out << *response << "\n";
      out.flush();
    } else {
      const double uptime_s = api::get_number(obj, "uptime_ms") / 1000.0;
      if (!once && polls > 1) {
        out << "\x1b[2J\x1b[H";  // refresh in place (loop mode only)
      }
      out << "fvc top — " << api::get_string(obj, "digest") << "  uptime "
          << fmt1(uptime_s) << "s  conns "
          << static_cast<std::uint64_t>(api::get_number(obj, "connections_active"))
          << "/"
          << static_cast<std::uint64_t>(api::get_number(obj, "connections_total"))
          << "  in-flight "
          << static_cast<std::uint64_t>(api::get_number(obj, "in_flight"))
          << "  stalls "
          << static_cast<std::uint64_t>(api::get_number(obj, "stalls"))
          << "  errors "
          << static_cast<std::uint64_t>(api::get_number(obj, "errors_total"))
          << "\n";
      report::Table t({"type", "total", "req/s", "p50 us", "p90 us", "p99 us"});
      const double dt_s = prev.valid
                              ? static_cast<double>(now - prev.ns) / 1e9
                              : uptime_s;  // first poll: average since start
      for (std::size_t i = 0; i < obs::kReqTypeCount; ++i) {
        const std::string name = obs::req_type_name(static_cast<obs::ReqType>(i));
        const double total = api::get_number(obj, name + "_count");
        const double base = prev.valid ? prev.counts[i] : 0.0;
        const double rate = dt_s > 0.0 ? (total - base) / dt_s : 0.0;
        t.add_row({name, std::to_string(static_cast<std::uint64_t>(total)),
                   fmt1(rate), fmt1(api::get_number(obj, name + "_p50_us")),
                   fmt1(api::get_number(obj, name + "_p90_us")),
                   fmt1(api::get_number(obj, name + "_p99_us"))});
        prev.counts[i] = total;
      }
      t.print(out);
      const double batch_rounds = api::get_number(obj, "batch_rounds");
      out << "batch: "
          << static_cast<std::uint64_t>(api::get_number(obj, "batched_requests"))
          << " coalesced reqs in "
          << static_cast<std::uint64_t>(batch_rounds) << " rounds ("
          << static_cast<std::uint64_t>(api::get_number(obj, "batch_points"))
          << " points)  size p50/p90/p99 "
          << fmt1(api::get_number(obj, "batch_size_p50")) << "/"
          << fmt1(api::get_number(obj, "batch_size_p90")) << "/"
          << fmt1(api::get_number(obj, "batch_size_p99")) << "\n";
      const double hits = api::get_number(obj, "cache_hits");
      const double misses = api::get_number(obj, "cache_misses");
      const double lookups = hits + misses;
      out << "cache: hit rate "
          << fmt1(lookups > 0.0 ? 100.0 * hits / lookups : 0.0) << "% ("
          << static_cast<std::uint64_t>(hits) << " hits, "
          << static_cast<std::uint64_t>(misses) << " misses, "
          << static_cast<std::uint64_t>(api::get_number(obj, "cache_evictions"))
          << " evictions)  tiles "
          << static_cast<std::uint64_t>(api::get_number(obj, "cache_tiles")) << "/"
          << static_cast<std::uint64_t>(api::get_number(obj, "cache_capacity"))
          << "  ~" << fmt1(api::get_number(obj, "cache_bytes") / 1024.0)
          << " KiB\n";
      out.flush();
    }
    if (raw_json) {
      // The table path updates prev in its render loop; mirror it here.
      for (std::size_t i = 0; i < obs::kReqTypeCount; ++i) {
        const std::string name = obs::req_type_name(static_cast<obs::ReqType>(i));
        prev.counts[i] = api::get_number(obj, name + "_count");
      }
    }
    prev.ns = now;
    prev.valid = true;
    if (count > 0 && polls >= count) {
      break;
    }
    // Chunked sleep so Ctrl-C lands within ~50ms, not a full interval.
    for (std::uint64_t slept = 0;
         slept < interval_ms && !ctx.cancel().stop_requested(); slept += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return kExitSuccess;
}

int run_command(const Args& args, std::ostream& out) {
  const std::string& cmd = args.command();
  if (cmd.empty()) {
    print_help(out);
    return kExitFailure;
  }
  if (cmd == "help") {
    print_help(out);
    return kExitSuccess;
  }
  const CommandSpec* spec = find_command(cmd);
  if (spec == nullptr) {
    out << "unknown command: " << cmd << "\n\n";
    print_help(out);
    return kExitFailure;
  }
  args.expect_only(allowed_flags(*spec));
  // --kernel pins the grid-eval kernel variant for every engine the command
  // constructs.  Validation (unknown name, variant not compiled in or not
  // executable on this CPU) happens at engine construction via
  // resolve_kernel, which throws rather than silently falling back.  The
  // pin is process-global, so it is cleared on every exit path — callers
  // (tests) may invoke run_command repeatedly.
  struct KernelPinGuard {
    ~KernelPinGuard() { core::set_forced_kernel(std::nullopt); }
  } kernel_pin_guard;
  if (args.has("kernel")) {
    const std::string name = args.get_string("kernel", "");
    const auto variant = core::kernel_from_name(name);
    if (!variant.has_value()) {
      throw std::invalid_argument(
          "--kernel: unknown variant '" + name +
          "' (expected scalar, generic, avx2, or neon)");
    }
    core::set_forced_kernel(*variant);
  }
  // --index pins the candidate-index variant the same way (process-global
  // pin, cleared on every exit path; every variant is valid on every host,
  // so the name check here is the only validation needed).
  struct IndexPinGuard {
    ~IndexPinGuard() { core::set_forced_index(std::nullopt); }
  } index_pin_guard;
  if (args.has("index")) {
    const std::string name = args.get_string("index", "");
    const auto variant = core::index_from_name(name);
    if (!variant.has_value()) {
      throw std::invalid_argument("--index: unknown variant '" + name +
                                  "' (expected flat, hier, or stream)");
    }
    core::set_forced_index(*variant);
  }
  CommandContext ctx(args, out);
  ctx.metrics().set_label("tool", "fvc_sim");
  ctx.metrics().set_label("command", cmd);
  if (args.has("kernel")) {
    ctx.metrics().set_label("kernel", args.get_string("kernel", ""));
  }
  if (args.has("index")) {
    ctx.metrics().set_label("index", args.get_string("index", ""));
  }
  // Shard identity travels in the metrics labels so a merged document
  // (RunMetrics::merge keeps the merger's labels, adopts shard-only ones)
  // still says which slice each export described.
  if (args.has("shard-count")) {
    ctx.metrics().set_label("shard_index", args.get_string("shard-index", "0"));
    ctx.metrics().set_label("shard_count", args.get_string("shard-count", "1"));
  }

  // --trace FILE: collect a timeline for the whole handler and export it
  // below.  The session is installed before the watchdog starts so the
  // monitor thread's own events land in a ring too.
  const std::string trace_path =
      args.has("trace") ? args.get_string("trace", "") : std::string();
  if (args.has("trace") && trace_path.empty()) {
    throw std::invalid_argument("--trace needs a file path");
  }
  std::optional<obs::TraceSession> trace_session;
  if (!trace_path.empty()) {
    trace_session.emplace();
    trace_session->install();
  }

  // --stall-timeout-ms MS: arm the watchdog for this invocation.  It feeds
  // on ctx.progress_fn() via the handler's sim-layer options.
  std::optional<obs::Watchdog> watchdog;
  const std::uint64_t stall_timeout_ms = args.get_size("stall-timeout-ms", 0);
  if (stall_timeout_ms > 0) {
    obs::WatchdogConfig wd;
    wd.stall_timeout_ms = stall_timeout_ms;
    wd.poll_interval_ms = std::min<std::uint64_t>(stall_timeout_ms, 100);
    wd.cancel = &ctx.cancel();
    wd.request_stop_on_stall = args.get_bool("stall-stop", false);
    watchdog.emplace(std::move(wd));
    ctx.set_watchdog(&*watchdog);
  }

  int code = kExitSuccess;
  {
    const ActiveTokenGuard token_guard(ctx.cancel());
    obs::Span run_span(ctx.root());
    const obs::TraceScope cmd_scope("command", obs::TraceCategory::kCli);
    code = spec->run(ctx);
  }
  // Join the monitor before draining so the drained timeline includes any
  // stall instants and no writer outlives the session.
  if (watchdog.has_value()) {
    ctx.set_watchdog(nullptr);
    watchdog->stop();
  }
  const bool cancelled = ctx.cancel().stop_requested();
  if (cancelled && code == kExitSuccess) {
    code = kExitCancelled;
    out << "cancelled: partial results (completed work only)\n";
  }
  ctx.root().set("exit_code", static_cast<double>(code));
  ctx.root().set("cancelled", cancelled ? 1.0 : 0.0);
  if (ctx.metrics_requested()) {
    const std::string path = args.get_string("metrics", "");
    if (path.empty()) {
      throw std::invalid_argument("--metrics needs a file path");
    }
    obs::write_json_file(path, ctx.metrics());
    out << "metrics: wrote " << path << "\n";
  }
  if (trace_session.has_value()) {
    const obs::TraceSession::Drained drained = trace_session->drain();
    trace_session->uninstall();
    obs::TraceExportMeta meta;
    meta.process_name = "fvc_sim";
    meta.labels["command"] = cmd;
    if (args.has("kernel")) {
      meta.labels["kernel"] = args.get_string("kernel", "");
    }
    if (args.has("index")) {
      meta.labels["index"] = args.get_string("index", "");
    }
    if (cancelled) {
      meta.labels["cancelled"] = "1";
    }
    obs::write_chrome_trace_file(trace_path, drained, meta);
    out << "trace: wrote " << trace_path << "\n";
  }
  return code;
}

}  // namespace fvc::cli
