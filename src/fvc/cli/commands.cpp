#include "fvc/cli/commands.hpp"

#include <ostream>
#include <vector>

#include "fvc/analysis/csa.hpp"
#include "fvc/analysis/exact_theory.hpp"
#include "fvc/analysis/planner.hpp"
#include "fvc/analysis/poisson_theory.hpp"
#include "fvc/analysis/uniform_theory.hpp"
#include "fvc/barrier/barrier.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/io/network_io.hpp"
#include "fvc/report/heatmap.hpp"
#include "fvc/report/table.hpp"
#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/phase_scan.hpp"
#include "fvc/opt/greedy_repair.hpp"
#include "fvc/opt/orient_optimizer.hpp"
#include "fvc/sim/sweep.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"
#include "fvc/track/trajectory.hpp"

namespace fvc::cli {

void print_help(std::ostream& out) {
  out <<
      R"(fvc_sim — full-view coverage simulator (ICDCS 2012 reproduction)

usage: fvc_sim <command> [--flag value ...]

commands:
  csa       --n 1000 --theta 0.785
            print s_Nc and s_Sc (Theorems 1 and 2)
  plan      --n 1000 --theta 0.785 --fov 2.0 --margin 1.5 [--radius R]
            radius needed to hit margin * s_Sc; population for a fixed
            --radius when provided
  simulate  --n 500 --theta 0.785 --radius 0.15 --fov 2.0
            [--trials 40] [--seed 1] [--poisson 1] [--grid-side S]
            Monte-Carlo P(H_N), P(full view), P(H_S)
  poisson   --n 500 --theta 0.785 --radius 0.15 --fov 2.0
            closed-form P_N and P_S (Theorems 3 and 4)
  exact     --n 500 --theta 0.785 --radius 0.15 --fov 2.0
            exact per-point full-view law next to both sector bounds
  phase     --n 500 --theta 0.785 [--q-lo 0.5] [--q-hi 3] [--points 6]
            [--trials 30] [--seed 1]
  map       --n 300 --theta 0.785 --radius 0.15 --fov 2.0
            [--seed 1] [--side 48] [--save FILE] [--load FILE]
            ASCII heatmap: '@' full-view covered, ' ' uncovered
  barrier   --n 400 --theta 0.785 --radius 0.2 --fov 2.0 [--seed 1]
            [--y-lo 0.45] [--y-hi 0.55]
            weak/strong full-view barrier coverage of a strip
  track     --n 400 --theta 0.785 --radius 0.2 --fov 2.0
            [--walks 20] [--seed 1]
            face-capture audit along random intruder walks
  repair    --n 300 --theta 0.785 --radius 0.2 --fov 2.0 [--seed 1]
            [--grid-side 20] [--save FILE] [--load FILE]
            greedily patch holes until the grid is full-view covered
  aim       --n 300 --theta 0.785 --radius 0.2 --fov 1.2 [--seed 1]
            [--grid-side 16] [--candidates 12] [--save FILE] [--load FILE]
            optimize camera orientations in place (positions fixed)
  help      this text
)";
}

namespace {

sim::TrialConfig config_from(const Args& args) {
  sim::TrialConfig cfg;
  cfg.n = args.get_size("n", 500);
  cfg.theta = args.get_double("theta", geom::kHalfPi);
  cfg.profile = core::HeterogeneousProfile::homogeneous(args.get_double("radius", 0.15),
                                                        args.get_double("fov", 2.0));
  cfg.deployment = args.get_double("poisson", 0.0) != 0.0 ? sim::Deployment::kPoisson
                                                          : sim::Deployment::kUniform;
  if (args.has("grid-side")) {
    cfg.grid_side = args.get_size("grid-side", 32);
  }
  return cfg;
}

core::Network deploy_or_load(const Args& args) {
  if (args.has("load")) {
    return core::Network(io::load_cameras_file(args.get_string("load", "")));
  }
  const auto profile = core::HeterogeneousProfile::homogeneous(
      args.get_double("radius", 0.15), args.get_double("fov", 2.0));
  stats::Pcg32 rng(args.get_size("seed", 1));
  return deploy::deploy_uniform_network(profile, args.get_size("n", 300), rng);
}

}  // namespace

int cmd_csa(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta"});
  const double n = args.get_double("n", 1000.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  report::Table t({"quantity", "value"});
  t.add_row({"s_Nc (necessary CSA)", report::fmt_sci(analysis::csa_necessary(n, theta))});
  t.add_row({"s_Sc (sufficient CSA)", report::fmt_sci(analysis::csa_sufficient(n, theta))});
  t.add_row({"sectors k_N", std::to_string(analysis::necessary_sector_count(theta))});
  t.add_row({"sectors k_S", std::to_string(analysis::sufficient_sector_count(theta))});
  t.print(out);
  return 0;
}

int cmd_plan(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "fov", "margin", "radius"});
  const double n = args.get_double("n", 1000.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const double fov = args.get_double("fov", 2.0);
  const double margin = args.get_double("margin", 1.5);
  report::Table t({"plan", "value"});
  t.add_row({"radius for margin*s_Sc",
             report::fmt(analysis::required_radius(analysis::Condition::kSufficient, n,
                                                   theta, fov, margin),
                         4)});
  if (args.has("radius")) {
    const auto profile =
        core::HeterogeneousProfile::homogeneous(args.get_double("radius", 0.1), fov);
    const std::size_t pop = analysis::required_population(
        analysis::Condition::kSufficient, profile, theta, margin, 3, 100000000);
    t.add_row({"population for given radius", std::to_string(pop)});
  }
  t.print(out);
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "trials", "seed", "poisson",
                    "grid-side"});
  const sim::TrialConfig cfg = config_from(args);
  const auto est = sim::estimate_grid_events(cfg, args.get_size("trials", 40),
                                             args.get_size("seed", 1),
                                             sim::default_thread_count());
  report::Table t({"event", "probability", "95% CI"});
  const auto row = [&](const char* name, const sim::EventEstimate& e) {
    const auto ci = e.wilson();
    t.add_row({name, report::fmt(e.p(), 3),
               report::fmt_interval(ci.lo, ci.hi, 3)});
  };
  row("grid meets necessary condition (H_N)", est.necessary);
  row("grid full-view covered", est.full_view);
  row("grid meets sufficient condition (H_S)", est.sufficient);
  t.print(out);
  return 0;
}

int cmd_poisson(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov"});
  const double n = args.get_double("n", 500.0);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const auto profile = core::HeterogeneousProfile::homogeneous(
      args.get_double("radius", 0.15), args.get_double("fov", 2.0));
  report::Table t({"quantity", "value"});
  t.add_row({"P_N (Theorem 3)",
             report::fmt(analysis::prob_point_necessary_poisson(profile, n, theta), 4)});
  t.add_row({"P_S (Theorem 4)",
             report::fmt(analysis::prob_point_sufficient_poisson(profile, n, theta), 4)});
  t.print(out);
  return 0;
}

int cmd_exact(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov"});
  const std::size_t n = args.get_size("n", 500);
  const double theta = args.get_double("theta", geom::kHalfPi);
  const auto profile = core::HeterogeneousProfile::homogeneous(
      args.get_double("radius", 0.15), args.get_double("fov", 2.0));
  report::Table t({"per-point probability", "value"});
  t.add_row({"sufficient condition (Sec IV bound)",
             report::fmt(analysis::point_success_sufficient(profile, n, theta), 4)});
  t.add_row({"EXACT full view (Stevens mixture)",
             report::fmt(analysis::prob_point_full_view_uniform(profile, n, theta), 4)});
  t.add_row({"necessary condition (Sec III bound)",
             report::fmt(analysis::point_success_necessary(profile, n, theta), 4)});
  t.print(out);
  return 0;
}

int cmd_phase(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "q-lo", "q-hi", "points", "trials", "seed"});
  sim::PhaseScanConfig scan;
  scan.base.n = args.get_size("n", 500);
  scan.base.theta = args.get_double("theta", geom::kHalfPi);
  scan.base.profile = core::HeterogeneousProfile::homogeneous(0.2, 2.0);
  scan.q_values = sim::linspace(args.get_double("q-lo", 0.5), args.get_double("q-hi", 3.0),
                                args.get_size("points", 6));
  scan.trials = args.get_size("trials", 30);
  scan.master_seed = args.get_size("seed", 1);
  const auto points = sim::run_phase_scan(scan);
  report::Table t({"q", "P(H_N)", "P(full view)", "P(H_S)"});
  for (const auto& pt : points) {
    t.add_row({report::fmt(pt.q, 2), report::fmt(pt.events.necessary.p(), 3),
               report::fmt(pt.events.full_view.p(), 3),
               report::fmt(pt.events.sufficient.p(), 3)});
  }
  t.print(out);
  return 0;
}

int cmd_map(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "seed", "side", "save", "load"});
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(args);
  if (args.has("save")) {
    io::save_cameras_file(args.get_string("save", ""), net.cameras());
    out << "saved " << net.size() << " cameras to " << args.get_string("save", "")
        << "\n";
  }
  std::vector<double> dirs;
  const report::CoverageMap map(args.get_size("side", 48), [&](const geom::Vec2& p) {
    net.viewed_directions_into(p, dirs);
    return core::full_view_covered(dirs, theta).covered ? 1.0 : 0.0;
  });
  map.render_ascii(out);
  out << "('@' = full-view covered, ' ' = not)\n";
  return 0;
}

int cmd_barrier(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "seed", "y-lo", "y-hi", "load"});
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(args);
  barrier::BarrierSpec strip;
  strip.y_lo = args.get_double("y-lo", 0.45);
  strip.y_hi = args.get_double("y-hi", 0.55);
  const barrier::BarrierResult r = barrier::evaluate_barrier(net, strip, theta);
  report::Table t({"barrier metric", "value"});
  t.add_row({"strip cells full-view covered", report::fmt(r.covered_fraction, 3)});
  t.add_row({"weak barrier (straight crossings)", r.weak ? "HELD" : "BREACHED"});
  t.add_row({"strong barrier (any crossing path)", r.strong ? "HELD" : "BREACHED"});
  t.print(out);
  return 0;
}

int cmd_track(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "seed", "walks", "load"});
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(args);
  stats::Pcg32 rng(args.get_size("seed", 1) ^ 0x77AC4);
  const std::size_t walks = args.get_size("walks", 20);
  double fv = 0.0;
  double facing = 0.0;
  std::size_t captured_walks = 0;
  for (std::size_t w = 0; w < walks; ++w) {
    const track::Trajectory path = track::random_waypoint_path(rng, 4, 0.02);
    const track::TrackReport r = track::evaluate_trajectory(net, path, theta);
    fv += r.full_view_fraction();
    facing += r.facing_captured_fraction();
    captured_walks += r.first_capture.has_value() ? 1 : 0;
  }
  report::Table t({"tracking metric", "value"});
  t.add_row({"mean path full-view fraction", report::fmt(fv / static_cast<double>(walks), 3)});
  t.add_row({"mean facing-captured fraction",
             report::fmt(facing / static_cast<double>(walks), 3)});
  t.add_row({"walks with at least one capture",
             std::to_string(captured_walks) + "/" + std::to_string(walks)});
  t.print(out);
  return 0;
}

int cmd_repair(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "seed", "grid-side", "save", "load"});
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(args);
  const core::DenseGrid grid(args.get_size("grid-side", 20));
  opt::RepairConfig cfg;
  cfg.theta = theta;
  cfg.camera_radius = args.get_double("radius", 0.2);
  cfg.camera_fov = args.get_double("fov", 2.0);
  const opt::RepairResult result = opt::repair_full_view(net, grid, cfg);
  report::Table t({"repair metric", "value"});
  t.add_row({"grid points failing before", std::to_string(result.initial_holes)});
  t.add_row({"patch cameras added", std::to_string(result.added.size())});
  t.add_row({"grid fully covered after", result.success ? "YES" : "NO (budget hit)"});
  t.print(out);
  if (args.has("save")) {
    const core::Network fixed = opt::apply_repair(net, result);
    io::save_cameras_file(args.get_string("save", ""), fixed.cameras());
    out << "saved " << fixed.size() << " cameras to " << args.get_string("save", "")
        << "\n";
  }
  return result.success ? 0 : 1;
}

int cmd_aim(const Args& args, std::ostream& out) {
  args.expect_only({"n", "theta", "radius", "fov", "seed", "grid-side", "candidates",
                    "save", "load"});
  const double theta = args.get_double("theta", geom::kHalfPi);
  const core::Network net = deploy_or_load(args);
  const core::DenseGrid grid(args.get_size("grid-side", 16));
  opt::AimConfig cfg;
  cfg.theta = theta;
  cfg.candidates = args.get_size("candidates", 12);
  const opt::AimResult result = opt::optimize_orientations(net, grid, cfg);
  report::Table t({"aiming metric", "value"});
  t.add_row({"grid points covered before", std::to_string(result.initial_covered)});
  t.add_row({"grid points covered after", std::to_string(result.final_covered)});
  t.add_row({"cameras re-aimed", std::to_string(result.reorientations)});
  t.add_row({"sweeps", std::to_string(result.sweeps_used)});
  t.print(out);
  if (args.has("save")) {
    io::save_cameras_file(args.get_string("save", ""), result.cameras);
    out << "saved " << result.cameras.size() << " cameras to "
        << args.get_string("save", "") << "\n";
  }
  return 0;
}

int run_command(const Args& args, std::ostream& out) {
  const std::string& cmd = args.command();
  if (cmd.empty()) {
    print_help(out);
    return 1;
  }
  if (cmd == "help") {
    print_help(out);
    return 0;
  }
  if (cmd == "csa") {
    return cmd_csa(args, out);
  }
  if (cmd == "plan") {
    return cmd_plan(args, out);
  }
  if (cmd == "simulate") {
    return cmd_simulate(args, out);
  }
  if (cmd == "poisson") {
    return cmd_poisson(args, out);
  }
  if (cmd == "exact") {
    return cmd_exact(args, out);
  }
  if (cmd == "phase") {
    return cmd_phase(args, out);
  }
  if (cmd == "map") {
    return cmd_map(args, out);
  }
  if (cmd == "barrier") {
    return cmd_barrier(args, out);
  }
  if (cmd == "track") {
    return cmd_track(args, out);
  }
  if (cmd == "repair") {
    return cmd_repair(args, out);
  }
  if (cmd == "aim") {
    return cmd_aim(args, out);
  }
  out << "unknown command: " << cmd << "\n\n";
  print_help(out);
  return 1;
}

}  // namespace fvc::cli
