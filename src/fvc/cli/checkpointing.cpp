#include "fvc/cli/checkpointing.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "fvc/report/table.hpp"
#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/phase_scan.hpp"
#include "fvc/stats/summary.hpp"

namespace fvc::cli {

CheckpointOptions checkpoint_options_from(const Args& args) {
  CheckpointOptions opts;
  if (args.has("shard-index") && !args.has("shard-count")) {
    throw std::invalid_argument("--shard-index needs --shard-count");
  }
  opts.shard.count = args.get_size("shard-count", 1);
  opts.shard.index = args.get_size("shard-index", 0);
  sim::validate(opts.shard);
  opts.path = args.get_string("checkpoint", "");
  if ((args.has("resume") || args.has("checkpoint-every")) && opts.path.empty()) {
    throw std::invalid_argument(
        "--resume and --checkpoint-every need --checkpoint FILE");
  }
  opts.every = args.get_size("checkpoint-every", 16);
  if (opts.every == 0) {
    throw std::invalid_argument("--checkpoint-every must be >= 1");
  }
  opts.resume = args.get_bool("resume", false);
  return opts;
}

void CanonicalConfig::add(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  text_ += std::string(key) + "=" + buf + ";";
}

void CanonicalConfig::add(std::string_view key, std::uint64_t value) {
  text_ += std::string(key) + "=" + std::to_string(value) + ";";
}

void CanonicalConfig::add(std::string_view key, std::string_view value) {
  text_ += std::string(key) + "=" + std::string(value) + ";";
}

CheckpointSession::CheckpointSession(const CheckpointOptions& opts, std::string kind,
                                     std::uint64_t master_seed,
                                     std::uint64_t config_digest,
                                     std::uint64_t total_units)
    : opts_(opts) {
  cp_.kind = std::move(kind);
  cp_.master_seed = master_seed;
  cp_.config_digest = config_digest;
  cp_.total_units = total_units;
  cp_.shard_index = opts.shard.index;
  cp_.shard_count = opts.shard.count;
  if (opts_.resume) {
    const io::Checkpoint resumed = io::load_checkpoint_file(opts_.path);
    if (resumed.kind != cp_.kind) {
      throw std::runtime_error("--resume: " + opts_.path + " holds a '" +
                               resumed.kind + "' run, not '" + cp_.kind + "'");
    }
    if (resumed.master_seed != cp_.master_seed) {
      throw std::runtime_error("--resume: " + opts_.path +
                               " was produced under a different master seed");
    }
    if (resumed.config_digest != cp_.config_digest) {
      throw std::runtime_error(
          "--resume: " + opts_.path +
          " was produced under a different configuration (config digest mismatch)");
    }
    if (resumed.total_units != cp_.total_units) {
      throw std::runtime_error("--resume: " + opts_.path + " expects " +
                               std::to_string(resumed.total_units) +
                               " total units, this invocation " +
                               std::to_string(cp_.total_units));
    }
    // The shard spec is deliberately NOT validated: completed units are
    // skipped no matter which shard geometry produced them, so a killed
    // 4-way run can be finished by one unsharded --resume invocation.
    cp_.units = resumed.units;
  }
  pending_ = sim::owned_units(opts_.shard, cp_.total_units, cp_.completed_indices());
}

void CheckpointSession::record(std::uint64_t index, std::vector<double> payload) {
  cp_.units.push_back(io::CheckpointUnit{index, std::move(payload)});
  if (!opts_.checkpointing()) {
    return;
  }
  if (++unflushed_ >= opts_.every) {
    cp_.normalize();
    io::save_checkpoint_file(opts_.path, cp_);
    unflushed_ = 0;
  }
}

void CheckpointSession::finish() {
  cp_.normalize();
  if (opts_.checkpointing()) {
    io::save_checkpoint_file(opts_.path, cp_);
    unflushed_ = 0;
  }
}

const io::Checkpoint& CheckpointSession::checkpoint() {
  cp_.normalize();
  return cp_;
}

namespace {

void render_simulate(std::ostream& out, const io::Checkpoint& cp) {
  std::vector<sim::TrialEvents> events;
  events.reserve(cp.units.size());
  for (const io::CheckpointUnit& unit : cp.units) {
    events.push_back(sim::decode_trial_events(unit.payload));
  }
  const sim::GridEventsEstimate est = sim::aggregate_grid_events(events);
  report::Table t({"event", "probability", "95% CI"});
  const auto row = [&](const char* name, const sim::EventEstimate& e) {
    const auto ci = e.wilson();
    t.add_row({name, report::fmt(e.p(), 3), report::fmt_interval(ci.lo, ci.hi, 3)});
  };
  row("grid meets necessary condition (H_N)", est.necessary);
  row("grid full-view covered", est.full_view);
  row("grid meets sufficient condition (H_S)", est.sufficient);
  t.print(out);
}

void render_phase(std::ostream& out, const io::Checkpoint& cp) {
  report::Table t({"q", "P(H_N)", "P(full view)", "P(H_S)"});
  for (const io::CheckpointUnit& unit : cp.units) {
    const sim::PhasePoint pt = sim::decode_phase_point(unit.index, unit.payload);
    t.add_row({report::fmt(pt.q, 2), report::fmt(pt.events.necessary.p(), 3),
               report::fmt(pt.events.full_view.p(), 3),
               report::fmt(pt.events.sufficient.p(), 3)});
  }
  t.print(out);
}

void render_threshold(std::ostream& out, const io::Checkpoint& cp) {
  stats::OnlineStats q_stats;
  report::Table t({"repeat", "q threshold"});
  for (const io::CheckpointUnit& unit : cp.units) {
    if (unit.payload.size() != 1) {
      throw std::runtime_error(
          "render_checkpoint_report: malformed threshold payload at unit " +
          std::to_string(unit.index));
    }
    q_stats.add(unit.payload[0]);
    t.add_row({std::to_string(unit.index), report::fmt(unit.payload[0], 4)});
  }
  t.print(out);
  if (q_stats.count() > 0) {
    report::Table summary({"threshold summary", "value"});
    summary.add_row({"mean q", report::fmt(q_stats.mean(), 4)});
    summary.add_row({"stddev", report::fmt(q_stats.stddev(), 4)});
    summary.add_row(
        {"range", report::fmt_interval(q_stats.min(), q_stats.max(), 4)});
    summary.print(out);
  }
}

}  // namespace

void render_checkpoint_report(std::ostream& out, const io::Checkpoint& cp) {
  if (cp.kind == "simulate") {
    render_simulate(out, cp);
  } else if (cp.kind == "phase") {
    render_phase(out, cp);
  } else if (cp.kind == "threshold") {
    render_threshold(out, cp);
  } else {
    throw std::runtime_error("render_checkpoint_report: unknown kind '" + cp.kind +
                             "'");
  }
  if (cp.units.size() < cp.total_units) {
    out << "partial: " << cp.units.size() << "/" << cp.total_units
        << " units complete\n";
  }
}

}  // namespace fvc::cli
