/// \file command_registry.hpp
/// \brief The single source of truth for fvc_sim's subcommands and flags.
///
/// Each subcommand is one CommandSpec row: name, one-line summary, handler
/// and flag table.  Both the help text (print_help in commands.hpp) and
/// the per-command `Args::expect_only` allowlists are generated from this
/// table, so a flag added here is simultaneously documented and accepted —
/// the two can no longer drift apart (tests/cli/test_commands.cpp locks
/// this by diffing the help against the registry).

#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace fvc::cli {

class CommandContext;

/// One flag a subcommand accepts.
struct FlagSpec {
  std::string_view name;      ///< flag name without the leading "--"
  std::string_view value;     ///< placeholder for help text, e.g. "N", "FILE"
  std::string_view fallback;  ///< printed default; "" = optional, no default
  std::string_view help;      ///< one-line description
};

/// One subcommand: name, summary, handler, and the flags it accepts.
struct CommandSpec {
  std::string_view name;
  std::string_view summary;
  int (*run)(CommandContext&);
  std::vector<FlagSpec> flags;
};

/// All subcommands, in help order.
[[nodiscard]] const std::vector<CommandSpec>& command_table();

/// Flags every subcommand accepts (--metrics).
[[nodiscard]] const std::vector<FlagSpec>& global_flags();

/// Look a subcommand up by name; nullptr when unknown.
[[nodiscard]] const CommandSpec* find_command(std::string_view name);

/// `Args::expect_only` allowlist: the command's own flags plus the global
/// ones.
[[nodiscard]] std::set<std::string> allowed_flags(const CommandSpec& cmd);

}  // namespace fvc::cli
