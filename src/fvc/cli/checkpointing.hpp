/// \file checkpointing.hpp
/// \brief The CLI side of shard/checkpoint/resume: flag parsing, config
/// digests, the per-command checkpoint lifecycle, and report rendering
/// from checkpoint documents.
///
/// The sim layer only knows how to run an explicit subset of unit indices
/// and call a hook per finished unit; the io layer only knows how to
/// persist units.  This header is the glue: it turns
/// `--shard-index/--shard-count/--checkpoint/--checkpoint-every/--resume`
/// into "which units do I run" and "when do I flush", and renders the
/// same report tables from a checkpoint document that the live commands
/// print — which is what lets `merge-shards` finish a run no single
/// process ever saw in full.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "fvc/cli/args.hpp"
#include "fvc/io/checkpoint.hpp"
#include "fvc/sim/shard.hpp"

namespace fvc::cli {

/// Parsed shard/checkpoint flags, validated for mutual consistency.
struct CheckpointOptions {
  sim::ShardSpec shard;     ///< --shard-index / --shard-count (default 0/1)
  std::string path;         ///< --checkpoint FILE; empty = no checkpointing
  std::size_t every = 16;   ///< --checkpoint-every K (flush cadence, units)
  bool resume = false;      ///< --resume: skip units the file already holds

  [[nodiscard]] bool checkpointing() const { return !path.empty(); }
  /// True when the command must drive the run through an explicit unit
  /// list (sharded, checkpointed, or resuming) instead of the plain path.
  [[nodiscard]] bool unit_driven() const {
    return checkpointing() || shard.is_sharded();
  }
};

/// Parse and validate the shard/checkpoint flags.
/// \throws std::invalid_argument on inconsistent combinations
/// (--shard-index without --shard-count, --resume or --checkpoint-every
/// without --checkpoint, --checkpoint-every 0, index >= count).
[[nodiscard]] CheckpointOptions checkpoint_options_from(const Args& args);

/// Canonical-config accumulator: append `key=value` pairs (doubles in
/// %.17g so the digest is exact, not formatting-dependent) and digest the
/// result with io::config_digest64.  Commands feed every parameter that
/// affects unit outcomes — and nothing presentational — so resumes and
/// merges can reject data from a different experiment.
class CanonicalConfig {
 public:
  void add(std::string_view key, double value);
  void add(std::string_view key, std::uint64_t value);
  void add(std::string_view key, std::string_view value);
  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] std::uint64_t digest() const { return io::config_digest64(text_); }

 private:
  std::string text_;
};

/// One command's checkpoint lifecycle.  Construction performs the resume
/// load (validating kind, master seed, config digest and total_units
/// against the file — a mismatch is an error, not a silent restart) and
/// computes the pending unit list: this shard's indices minus whatever the
/// resumed file already completed.  `record` appends one finished unit and
/// flushes every `opts.every` units; `finish` flushes the remainder, so a
/// cancelled command that calls it on the way out leaves a valid file
/// covering exactly the completed work.
class CheckpointSession {
 public:
  /// \throws std::runtime_error when --resume was given but the file is
  /// missing/unreadable or records a different run.
  CheckpointSession(const CheckpointOptions& opts, std::string kind,
                    std::uint64_t master_seed, std::uint64_t config_digest,
                    std::uint64_t total_units);

  /// Unit indices still to run in this process (strictly increasing).
  [[nodiscard]] const std::vector<std::uint64_t>& pending() const { return pending_; }

  /// Record one finished unit.  Serialized by the caller (the sim layer's
  /// hooks already are).
  void record(std::uint64_t index, std::vector<double> payload);

  /// Flush outstanding units to disk (no-op without --checkpoint).
  void finish();

  /// The document accumulated so far: resumed units plus recorded ones,
  /// normalized.  This is what reports fold over.
  [[nodiscard]] const io::Checkpoint& checkpoint();

 private:
  CheckpointOptions opts_;
  io::Checkpoint cp_;
  std::vector<std::uint64_t> pending_;
  std::size_t unflushed_ = 0;
};

/// Render the command report for a (possibly merged, possibly partial)
/// checkpoint document, dispatching on `cp.kind`: "simulate" folds trial
/// events into the probability table, "phase" reconstructs the scan rows,
/// "threshold" lists per-repeat crossings with their summary.  Partial
/// documents render the completed units and say how many are missing.
/// \throws std::runtime_error on an unknown kind or malformed payloads.
void render_checkpoint_report(std::ostream& out, const io::Checkpoint& cp);

}  // namespace fvc::cli
