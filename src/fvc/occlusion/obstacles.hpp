/// \file obstacles.hpp
/// \brief Line-of-sight occlusion by disc obstacles.
///
/// The paper's Section I lists terrain obstruction as one source of
/// heterogeneity; the direct model is a field of opaque disc obstacles
/// blocking the camera-to-object sight line.  A camera covers a point
/// only when the binary sector predicate holds AND the open segment
/// between them misses every obstacle.
///
/// Torus geometry: the sight line follows the minimal displacement.  A
/// segment of length <= sqrt(2)/2 anchored in the unit cell stays inside
/// [-1, 2]^2, so testing the nine unit translates of each obstacle centre
/// against the planar segment is exact.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/network.hpp"
#include "fvc/geometry/space.hpp"
#include "fvc/geometry/vec2.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::occlusion {

/// An opaque disc obstacle.
struct Disc {
  geom::Vec2 center;
  double radius = 0.0;
};

/// Distance from point `p` to the closed segment [a, b] in the plane.
[[nodiscard]] double point_segment_distance(const geom::Vec2& p, const geom::Vec2& a,
                                            const geom::Vec2& b);

/// A field of disc obstacles on the unit square/torus.
class ObstacleField {
 public:
  ObstacleField() = default;

  /// \throws std::invalid_argument on non-positive radii.
  explicit ObstacleField(std::vector<Disc> discs);

  /// `count` random obstacles with the given radius, uniform centres.
  [[nodiscard]] static ObstacleField random(std::size_t count, double radius,
                                            stats::Pcg32& rng);

  [[nodiscard]] std::span<const Disc> discs() const { return discs_; }
  [[nodiscard]] bool empty() const { return discs_.empty(); }
  [[nodiscard]] std::size_t size() const { return discs_.size(); }

  /// Total obstacle area (overlaps double-counted).
  [[nodiscard]] double total_area() const;

  /// True when the open sight line from `from` to `to` intersects any
  /// obstacle's interior.  Endpoints touching an obstacle boundary do not
  /// block.  In torus mode the minimal-displacement segment is used.
  [[nodiscard]] bool blocks(const geom::Vec2& from, const geom::Vec2& to,
                            geom::SpaceMode mode = geom::SpaceMode::kTorus) const;

 private:
  std::vector<Disc> discs_;
};

/// Coverage with occlusion: the camera's sector predicate AND a clear
/// sight line.
[[nodiscard]] bool covers_with_occlusion(const core::Camera& cam, const geom::Vec2& p,
                                         const ObstacleField& field,
                                         geom::SpaceMode mode = geom::SpaceMode::kTorus);

/// Viewed directions of all cameras in `net` that cover `p` with a clear
/// sight line — drop-in replacement for Network::viewed_directions that
/// the full-view predicates consume.
[[nodiscard]] std::vector<double> viewed_directions_with_occlusion(
    const core::Network& net, const geom::Vec2& p, const ObstacleField& field);

}  // namespace fvc::occlusion
