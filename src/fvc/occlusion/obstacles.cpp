#include "fvc/occlusion/obstacles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/core/coverage.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::occlusion {

double point_segment_distance(const geom::Vec2& p, const geom::Vec2& a,
                              const geom::Vec2& b) {
  const geom::Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) {
    return geom::distance(p, a);
  }
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return geom::distance(p, a + ab * t);
}

ObstacleField::ObstacleField(std::vector<Disc> discs) : discs_(std::move(discs)) {
  for (const Disc& d : discs_) {
    if (!(d.radius > 0.0)) {
      throw std::invalid_argument("ObstacleField: obstacle radius must be positive");
    }
  }
}

ObstacleField ObstacleField::random(std::size_t count, double radius, stats::Pcg32& rng) {
  std::vector<Disc> discs;
  discs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    discs.push_back({{stats::uniform01(rng), stats::uniform01(rng)}, radius});
  }
  return ObstacleField(std::move(discs));
}

double ObstacleField::total_area() const {
  double area = 0.0;
  for (const Disc& d : discs_) {
    area += geom::kPi * d.radius * d.radius;
  }
  return area;
}

bool ObstacleField::blocks(const geom::Vec2& from, const geom::Vec2& to,
                           geom::SpaceMode mode) const {
  if (discs_.empty()) {
    return false;
  }
  // Work in the plane frame anchored at `from`: the sight line runs to
  // from + d where d is the (mode-dependent) displacement.
  const geom::Vec2 a = from;
  const geom::Vec2 b = from + geom::displacement(from, to, mode);
  for (const Disc& disc : discs_) {
    if (mode == geom::SpaceMode::kPlane) {
      if (point_segment_distance(disc.center, a, b) < disc.radius) {
        return true;
      }
      continue;
    }
    // Torus: test the nine unit translates of the obstacle centre.
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const geom::Vec2 c{disc.center.x + static_cast<double>(dx),
                           disc.center.y + static_cast<double>(dy)};
        if (point_segment_distance(c, a, b) < disc.radius) {
          return true;
        }
      }
    }
  }
  return false;
}

bool covers_with_occlusion(const core::Camera& cam, const geom::Vec2& p,
                           const ObstacleField& field, geom::SpaceMode mode) {
  return core::covers(cam, p, mode) && !field.blocks(cam.position, p, mode);
}

std::vector<double> viewed_directions_with_occlusion(const core::Network& net,
                                                     const geom::Vec2& p,
                                                     const ObstacleField& field) {
  std::vector<double> dirs;
  net.for_each_candidate(p, [&](std::size_t i) {
    const core::Camera& cam = net.camera(i);
    if (const auto dir = core::viewed_direction_if_covered(cam, p, net.mode())) {
      if (!field.blocks(cam.position, p, net.mode())) {
        dirs.push_back(*dir);
      }
    }
  });
  return dirs;
}

}  // namespace fvc::occlusion
