/// The AVX2 classify kernel.  This translation unit is the only one in
/// the build compiled with -mavx2 (see src/CMakeLists.txt): it must
/// contain nothing but the kernel instantiation, and must not define any
/// inline/template symbol another TU could also instantiate — otherwise
/// the linker could fold a baseline caller onto AVX2 code and fault on
/// pre-AVX2 hosts.  Its single exported symbol, classify_avx2, is reached
/// only after runtime dispatch (cpu_features.hpp) confirms AVX2.

#if !defined(__AVX2__)
#error "grid_eval_kernel_avx2.cpp must be compiled with -mavx2"
#endif

#include "fvc/core/grid_eval_kernel.hpp"
#include "fvc/core/simd.hpp"

namespace fvc::core::detail {

ClassifyResult classify_avx2(const CandSpans& c, std::size_t count, double px,
                             double py, bool torus, double* xs, double* ys,
                             std::uint32_t* special) {
  return classify_batches<simd::Avx2Batch>(c, count, px, py, torus, xs, ys,
                                           special);
}

}  // namespace fvc::core::detail
