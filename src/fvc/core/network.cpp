#include "fvc/core/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "fvc/core/coverage.hpp"
#include "fvc/geometry/torus.hpp"

namespace fvc::core {

Network::Network(std::vector<Camera> cameras, geom::SpaceMode mode)
    : cameras_(std::move(cameras)), mode_(mode) {
  std::vector<geom::Vec2> positions;
  positions.reserve(cameras_.size());
  for (Camera& cam : cameras_) {
    validate(cam);
    if (mode_ == geom::SpaceMode::kTorus) {
      cam.position = geom::UnitTorus::wrap(cam.position);
    } else if (cam.position.x < 0.0 || cam.position.x > 1.0 || cam.position.y < 0.0 ||
               cam.position.y > 1.0) {
      throw std::invalid_argument(
          "Network: plane-mode camera positions must lie in [0,1]^2");
    }
    max_radius_ = std::max(max_radius_, cam.radius);
    positions.push_back(cam.position);
  }
  if (!cameras_.empty()) {
    // The bucket index always wraps; in plane mode the wrapped neighbour
    // cells only contribute extra candidates, which the exact coverage
    // test discards.
    index_ = SpatialIndex(positions, std::max(max_radius_, 1e-6));
  }
}

double Network::mean_sensing_area() const {
  if (cameras_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const Camera& cam : cameras_) {
    total += cam.sensing_area();
  }
  return total / static_cast<double>(cameras_.size());
}

std::vector<std::size_t> Network::covering_cameras(const geom::Vec2& p) const {
  std::vector<std::size_t> out;
  for_each_candidate(p, [&](std::size_t i) {
    if (covers(cameras_[i], p, mode_)) {
      out.push_back(i);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Network::coverage_degree(const geom::Vec2& p) const {
  std::size_t degree = 0;
  for_each_candidate(p, [&](std::size_t i) {
    if (covers(cameras_[i], p, mode_)) {
      ++degree;
    }
  });
  return degree;
}

bool Network::is_covered(const geom::Vec2& p) const { return coverage_degree(p) > 0; }

std::vector<double> Network::viewed_directions(const geom::Vec2& p) const {
  std::vector<double> dirs;
  viewed_directions_into(p, dirs);
  return dirs;
}

void Network::viewed_directions_into(const geom::Vec2& p, std::vector<double>& out) const {
  out.clear();
  for_each_candidate(p, [&](std::size_t i) {
    if (const auto dir = viewed_direction_if_covered(cameras_[i], p, mode_)) {
      out.push_back(*dir);
    }
  });
}

}  // namespace fvc::core
