#include "fvc/core/candidate_index.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fvc::core {

namespace {

constexpr std::array<std::string_view, kIndexVariantCount> kNames = {
    "flat", "hier", "stream"};

std::atomic<std::uint64_t> g_dispatch_counts[kIndexVariantCount];

/// The programmatic pin.  Encoded as variant index + 1 (0 = not pinned)
/// so the whole state fits one lock-free atomic.
std::atomic<int> g_forced{0};

}  // namespace

std::string_view index_name(IndexVariant v) {
  return kNames.at(static_cast<std::size_t>(v));
}

std::optional<IndexVariant> index_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kIndexVariantCount; ++i) {
    if (kNames[i] == name) {
      return static_cast<IndexVariant>(i);
    }
  }
  return std::nullopt;
}

IndexVariant preferred_index() { return IndexVariant::kStream; }

void set_forced_index(std::optional<IndexVariant> v) {
  g_forced.store(v.has_value() ? static_cast<int>(*v) + 1 : 0,
                 std::memory_order_relaxed);
}

std::optional<IndexVariant> forced_index() {
  const int raw = g_forced.load(std::memory_order_relaxed);
  if (raw == 0) {
    return std::nullopt;
  }
  return static_cast<IndexVariant>(raw - 1);
}

IndexVariant resolve_index() {
  if (const std::optional<IndexVariant> pinned = forced_index()) {
    return *pinned;
  }
  // Re-read the environment on every resolve (engine constructions are
  // rare next to the work an engine does) so harnesses can change it
  // without restarting the process.  Set-but-empty means unset, matching
  // FVC_FORCE_KERNEL.
  if (const char* env = std::getenv("FVC_FORCE_INDEX");
      env != nullptr && env[0] != '\0') {
    const std::optional<IndexVariant> v = index_from_name(env);
    if (!v.has_value()) {
      throw std::runtime_error(std::string("FVC_FORCE_INDEX: unknown index '") +
                               env + "' (expected flat|hier|stream)");
    }
    return *v;
  }
  return preferred_index();
}

void note_index_dispatch(IndexVariant v) {
  g_dispatch_counts[static_cast<std::size_t>(v)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t index_dispatch_count(IndexVariant v) {
  return g_dispatch_counts[static_cast<std::size_t>(v)].load(
      std::memory_order_relaxed);
}

}  // namespace fvc::core
