/// \file simd.hpp
/// \brief Portable fixed-width batch abstraction: 4 double lanes.
///
/// One batch type per backend, all exposing the same static interface so
/// the classify kernel (grid_eval_kernel.hpp) is written once as a
/// template and instantiated per backend in its own translation unit:
///
///   GenericBatch  plain per-lane double arithmetic; compiles at the
///                 baseline ISA everywhere (the compiler is free to
///                 auto-vectorize the lane loops)
///   Avx2Batch     __m256d; only defined when the including TU is
///                 compiled with AVX2 (-mavx2), i.e. inside
///                 grid_eval_kernel_avx2.cpp
///   NeonBatch     two float64x2_t halves; only defined on AArch64
///
/// Bit-identity contract: every arithmetic op maps to exactly one IEEE-754
/// binary64 operation per lane (add/sub/mul, round-to-nearest-even), `abs`
/// clears the sign bit, and comparisons are the ordered IEEE predicates —
/// so a lane computes bit-for-bit what the scalar oracle computes for the
/// same candidate.  Nothing here may introduce FMA contraction (the
/// backends use distinct mul and add operations, and kernel TUs are built
/// with -ffp-contract=off); that would change rounding and break the
/// engine's differential tests.
///
/// Masks are represented as batches whose lanes are all-ones / all-zero
/// bit patterns (the native form of both vector ISAs).  All-ones is a NaN
/// as a double, so masks must only meet bitwise ops — the kernel keeps
/// arithmetic and mask domains strictly separate.

#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace fvc::core::simd {

inline constexpr std::size_t kLanes = 4;

/// Portable fallback backend: a fixed array of 4 doubles with per-lane
/// loops.  Comparisons and bit ops go through uint64 bit casts.
struct GenericBatch {
  static constexpr std::size_t kWidth = kLanes;
  double v[kWidth];

  [[nodiscard]] static GenericBatch load(const double* p) {
    GenericBatch b;
    for (std::size_t i = 0; i < kWidth; ++i) {
      b.v[i] = p[i];
    }
    return b;
  }
  [[nodiscard]] static GenericBatch broadcast(double x) {
    GenericBatch b;
    for (std::size_t i = 0; i < kWidth; ++i) {
      b.v[i] = x;
    }
    return b;
  }
  void store(double* p) const {
    for (std::size_t i = 0; i < kWidth; ++i) {
      p[i] = v[i];
    }
  }

  [[nodiscard]] friend GenericBatch operator+(GenericBatch a, GenericBatch b) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = a.v[i] + b.v[i];
    }
    return r;
  }
  [[nodiscard]] friend GenericBatch operator-(GenericBatch a, GenericBatch b) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = a.v[i] - b.v[i];
    }
    return r;
  }
  [[nodiscard]] friend GenericBatch operator*(GenericBatch a, GenericBatch b) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = a.v[i] * b.v[i];
    }
    return r;
  }

  [[nodiscard]] static GenericBatch abs(GenericBatch a) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[i]) &
                                     0x7FFFFFFFFFFFFFFFULL);
    }
    return r;
  }

  /// Round each lane to the nearest integer.  Tie handling differs across
  /// backends (here std::round: halves away from zero; the vector backends
  /// round halves to even) — callers may only use round_nearest where the
  /// tie difference is erased downstream, as in the torus unwrap of
  /// grid_eval_kernel.hpp, whose boundary fixups map both tie results to
  /// the same value.
  [[nodiscard]] static GenericBatch round_nearest(GenericBatch a) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = std::round(a.v[i]);
    }
    return r;
  }

 private:
  template <class Pred>
  [[nodiscard]] static GenericBatch cmp(GenericBatch a, GenericBatch b, Pred pred) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = std::bit_cast<double>(pred(a.v[i], b.v[i]) ? ~std::uint64_t{0}
                                                          : std::uint64_t{0});
    }
    return r;
  }
  template <class Op>
  [[nodiscard]] static GenericBatch bits(GenericBatch a, GenericBatch b, Op op) {
    GenericBatch r;
    for (std::size_t i = 0; i < kWidth; ++i) {
      r.v[i] = std::bit_cast<double>(op(std::bit_cast<std::uint64_t>(a.v[i]),
                                        std::bit_cast<std::uint64_t>(b.v[i])));
    }
    return r;
  }

 public:
  [[nodiscard]] static GenericBatch cmp_le(GenericBatch a, GenericBatch b) {
    return cmp(a, b, [](double x, double y) { return x <= y; });
  }
  [[nodiscard]] static GenericBatch cmp_lt(GenericBatch a, GenericBatch b) {
    return cmp(a, b, [](double x, double y) { return x < y; });
  }
  [[nodiscard]] static GenericBatch cmp_ge(GenericBatch a, GenericBatch b) {
    return cmp(a, b, [](double x, double y) { return x >= y; });
  }
  [[nodiscard]] static GenericBatch cmp_gt(GenericBatch a, GenericBatch b) {
    return cmp(a, b, [](double x, double y) { return x > y; });
  }
  [[nodiscard]] static GenericBatch cmp_eq(GenericBatch a, GenericBatch b) {
    return cmp(a, b, [](double x, double y) { return x == y; });
  }

  [[nodiscard]] static GenericBatch bit_and(GenericBatch a, GenericBatch b) {
    return bits(a, b, [](std::uint64_t x, std::uint64_t y) { return x & y; });
  }
  [[nodiscard]] static GenericBatch bit_or(GenericBatch a, GenericBatch b) {
    return bits(a, b, [](std::uint64_t x, std::uint64_t y) { return x | y; });
  }
  /// a & ~b (keep a where b's mask is clear).
  [[nodiscard]] static GenericBatch bit_andnot(GenericBatch a, GenericBatch b) {
    return bits(a, b, [](std::uint64_t x, std::uint64_t y) { return x & ~y; });
  }

  /// mask ? a : b per lane; mask lanes must be all-ones or all-zero.
  [[nodiscard]] static GenericBatch select(GenericBatch mask, GenericBatch a,
                                           GenericBatch b) {
    return bit_or(bit_and(a, mask), bit_andnot(b, mask));
  }

  /// Bit i set iff lane i's mask is all-ones (tests the sign bit, like
  /// movemask on x86).
  [[nodiscard]] int movemask() const {
    int m = 0;
    for (std::size_t i = 0; i < kWidth; ++i) {
      m |= static_cast<int>(std::bit_cast<std::uint64_t>(v[i]) >> 63U)
           << static_cast<int>(i);
    }
    return m;
  }

  /// Left-pack the lanes selected by `mask` to dst[0..popcount) and return
  /// the popcount.  May write all kWidth slots of dst (the tail beyond the
  /// popcount is garbage), so dst must have room for kWidth doubles.
  static std::size_t compress_store(double* dst, GenericBatch a, int mask) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kWidth; ++i) {
      dst[n] = a.v[i];
      n += static_cast<std::size_t>((mask >> i) & 1);
    }
    return n;
  }
};

#if defined(__AVX2__)
/// AVX2 backend: one 256-bit register of 4 doubles.  vmulpd/vaddpd/vsubpd
/// are exactly-rounded IEEE ops, vandpd clears the sign bit for abs, and
/// vcmppd with ordered predicates matches the scalar comparisons
/// (operands are never NaN in the kernel's arithmetic domain).
struct Avx2Batch {
  static constexpr std::size_t kWidth = kLanes;
  __m256d v;

  [[nodiscard]] static Avx2Batch load(const double* p) {
    return {_mm256_loadu_pd(p)};
  }
  [[nodiscard]] static Avx2Batch broadcast(double x) {
    return {_mm256_set1_pd(x)};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  [[nodiscard]] friend Avx2Batch operator+(Avx2Batch a, Avx2Batch b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  [[nodiscard]] friend Avx2Batch operator-(Avx2Batch a, Avx2Batch b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  [[nodiscard]] friend Avx2Batch operator*(Avx2Batch a, Avx2Batch b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }

  [[nodiscard]] static Avx2Batch abs(Avx2Batch a) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    return {_mm256_andnot_pd(sign, a.v)};
  }

  /// Round to nearest integer, halves to even (vroundpd; see the tie
  /// caveat on GenericBatch::round_nearest).
  [[nodiscard]] static Avx2Batch round_nearest(Avx2Batch a) {
    return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
  }

  [[nodiscard]] static Avx2Batch cmp_le(Avx2Batch a, Avx2Batch b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  [[nodiscard]] static Avx2Batch cmp_lt(Avx2Batch a, Avx2Batch b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  [[nodiscard]] static Avx2Batch cmp_ge(Avx2Batch a, Avx2Batch b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  [[nodiscard]] static Avx2Batch cmp_gt(Avx2Batch a, Avx2Batch b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  [[nodiscard]] static Avx2Batch cmp_eq(Avx2Batch a, Avx2Batch b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
  }

  [[nodiscard]] static Avx2Batch bit_and(Avx2Batch a, Avx2Batch b) {
    return {_mm256_and_pd(a.v, b.v)};
  }
  [[nodiscard]] static Avx2Batch bit_or(Avx2Batch a, Avx2Batch b) {
    return {_mm256_or_pd(a.v, b.v)};
  }
  [[nodiscard]] static Avx2Batch bit_andnot(Avx2Batch a, Avx2Batch b) {
    return {_mm256_andnot_pd(b.v, a.v)};  // intrinsic computes ~first & second
  }

  [[nodiscard]] static Avx2Batch select(Avx2Batch mask, Avx2Batch a, Avx2Batch b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }

  [[nodiscard]] int movemask() const { return _mm256_movemask_pd(v); }

  /// Left-pack via one 8x32 permute: double lane k is the 32-bit lane pair
  /// (2k, 2k+1), so a 16-entry table of float-lane permutations compresses
  /// the whole register in two instructions — no serial per-lane loop.
  /// Writes all 32 bytes of dst (garbage beyond the popcount).
  static std::size_t compress_store(double* dst, Avx2Batch a, int mask) {
    alignas(32) static constexpr std::uint32_t kPack[16][8] = {
        {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
        {2, 3, 0, 1, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
        {4, 5, 0, 1, 2, 3, 6, 7}, {0, 1, 4, 5, 2, 3, 6, 7},
        {2, 3, 4, 5, 0, 1, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7},
        {6, 7, 0, 1, 2, 3, 4, 5}, {0, 1, 6, 7, 2, 3, 4, 5},
        {2, 3, 6, 7, 0, 1, 4, 5}, {0, 1, 2, 3, 6, 7, 4, 5},
        {4, 5, 6, 7, 0, 1, 2, 3}, {0, 1, 4, 5, 6, 7, 2, 3},
        {2, 3, 4, 5, 6, 7, 0, 1}, {0, 1, 2, 3, 4, 5, 6, 7}};
    const __m256i idx = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPack[static_cast<unsigned>(mask)]));
    const __m256 packed = _mm256_permutevar8x32_ps(_mm256_castpd_ps(a.v), idx);
    _mm256_storeu_pd(dst, _mm256_castps_pd(packed));
    return static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(mask)));
  }
};
#endif  // __AVX2__

#if defined(__aarch64__)
/// NEON backend: two 128-bit halves.  vadd/vsub/vmulq_f64 are the plain
/// (non-fused) IEEE ops; comparisons return uint64x2_t lane masks.
struct NeonBatch {
  static constexpr std::size_t kWidth = kLanes;
  float64x2_t lo, hi;

  [[nodiscard]] static NeonBatch load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  [[nodiscard]] static NeonBatch broadcast(double x) {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  void store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }

  [[nodiscard]] friend NeonBatch operator+(NeonBatch a, NeonBatch b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] friend NeonBatch operator-(NeonBatch a, NeonBatch b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] friend NeonBatch operator*(NeonBatch a, NeonBatch b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }

  [[nodiscard]] static NeonBatch abs(NeonBatch a) {
    return {vabsq_f64(a.lo), vabsq_f64(a.hi)};
  }

  /// Round to nearest integer, halves to even (frintn; see the tie caveat
  /// on GenericBatch::round_nearest).
  [[nodiscard]] static NeonBatch round_nearest(NeonBatch a) {
    return {vrndnq_f64(a.lo), vrndnq_f64(a.hi)};
  }

 private:
  [[nodiscard]] static NeonBatch from_masks(uint64x2_t mlo, uint64x2_t mhi) {
    return {vreinterpretq_f64_u64(mlo), vreinterpretq_f64_u64(mhi)};
  }
  [[nodiscard]] static uint64x2_t mask_lo(NeonBatch a) {
    return vreinterpretq_u64_f64(a.lo);
  }
  [[nodiscard]] static uint64x2_t mask_hi(NeonBatch a) {
    return vreinterpretq_u64_f64(a.hi);
  }

 public:
  [[nodiscard]] static NeonBatch cmp_le(NeonBatch a, NeonBatch b) {
    return from_masks(vcleq_f64(a.lo, b.lo), vcleq_f64(a.hi, b.hi));
  }
  [[nodiscard]] static NeonBatch cmp_lt(NeonBatch a, NeonBatch b) {
    return from_masks(vcltq_f64(a.lo, b.lo), vcltq_f64(a.hi, b.hi));
  }
  [[nodiscard]] static NeonBatch cmp_ge(NeonBatch a, NeonBatch b) {
    return from_masks(vcgeq_f64(a.lo, b.lo), vcgeq_f64(a.hi, b.hi));
  }
  [[nodiscard]] static NeonBatch cmp_gt(NeonBatch a, NeonBatch b) {
    return from_masks(vcgtq_f64(a.lo, b.lo), vcgtq_f64(a.hi, b.hi));
  }
  [[nodiscard]] static NeonBatch cmp_eq(NeonBatch a, NeonBatch b) {
    return from_masks(vceqq_f64(a.lo, b.lo), vceqq_f64(a.hi, b.hi));
  }

  [[nodiscard]] static NeonBatch bit_and(NeonBatch a, NeonBatch b) {
    return from_masks(vandq_u64(mask_lo(a), mask_lo(b)),
                      vandq_u64(mask_hi(a), mask_hi(b)));
  }
  [[nodiscard]] static NeonBatch bit_or(NeonBatch a, NeonBatch b) {
    return from_masks(vorrq_u64(mask_lo(a), mask_lo(b)),
                      vorrq_u64(mask_hi(a), mask_hi(b)));
  }
  /// a & ~b (note vbicq computes first & ~second).
  [[nodiscard]] static NeonBatch bit_andnot(NeonBatch a, NeonBatch b) {
    return from_masks(vbicq_u64(mask_lo(a), mask_lo(b)),
                      vbicq_u64(mask_hi(a), mask_hi(b)));
  }

  [[nodiscard]] static NeonBatch select(NeonBatch mask, NeonBatch a, NeonBatch b) {
    return {vbslq_f64(mask_lo(mask), a.lo, b.lo),
            vbslq_f64(mask_hi(mask), a.hi, b.hi)};
  }

  [[nodiscard]] int movemask() const {
    const uint64x2_t l = vshrq_n_u64(mask_lo(*this), 63);
    const uint64x2_t h = vshrq_n_u64(mask_hi(*this), 63);
    return static_cast<int>(vgetq_lane_u64(l, 0)) |
           (static_cast<int>(vgetq_lane_u64(l, 1)) << 1) |
           (static_cast<int>(vgetq_lane_u64(h, 0)) << 2) |
           (static_cast<int>(vgetq_lane_u64(h, 1)) << 3);
  }

  /// Left-pack the lanes selected by `mask` (see GenericBatch); NEON has
  /// no cross-register double permute, so spill and pack scalar-wise.
  /// May write all kWidth slots of dst.
  static std::size_t compress_store(double* dst, NeonBatch a, int mask) {
    double buf[kWidth];
    a.store(buf);
    std::size_t n = 0;
    for (std::size_t i = 0; i < kWidth; ++i) {
      dst[n] = buf[i];
      n += static_cast<std::size_t>((mask >> i) & 1);
    }
    return n;
  }
};
#endif  // __aarch64__

}  // namespace fvc::core::simd
