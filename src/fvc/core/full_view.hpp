/// \file full_view.hpp
/// \brief Full-view coverage predicates — the paper's core concept.
///
/// Three point predicates, ordered by strength:
///
///   sufficient condition (Section IV, theta-sectors)
///     ==> exact full-view coverage (Definition 1)
///     ==> necessary condition (Section III, 2*theta-sectors)
///
/// The exact predicate follows directly from Definition 1: the safe facing
/// directions form the union of arcs of half-width theta around the viewed
/// directions of the covering sensors, so P is full-view covered iff the
/// largest circular gap between consecutive viewed directions is at most
/// 2*theta.  The sector conditions reproduce the paper's Figures 4 and 6
/// constructions: partition the circle into sectors (angle 2*theta for the
/// necessary condition, theta for the sufficient one, plus the extra
/// remainder-bisector sector T_{k+1}) and require a covering sensor whose
/// viewed direction lies in every sector.
///
/// Every predicate has two overloads: one on raw viewed directions (pure,
/// easily property-tested) and one on a `Network` + point.

#pragma once

#include <optional>
#include <span>

#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// Outcome of the exact full-view test with diagnostic payload.
struct FullViewResult {
  bool covered = false;          ///< Definition-1 full-view coverage
  double max_gap = 0.0;          ///< largest circular gap between viewed dirs
  std::size_t covering_count = 0;///< number of sensors covering the point
  /// An unsafe facing direction when not covered (bisector of the widest
  /// gap), as a witness for debugging/visualisation.
  std::optional<double> witness_unsafe_direction;
};

/// Exact full-view coverage from viewed directions.
/// An empty `viewed_dirs` span (zero covering sensors) is well-defined:
/// not covered, `max_gap == 2*pi`, `covering_count == 0`, and the witness
/// is direction 0 (every facing direction is unsafe).
/// \pre theta in (0, pi]
[[nodiscard]] FullViewResult full_view_covered(std::span<const double> viewed_dirs,
                                               double theta);

/// Exact full-view coverage of point `p` in `net`.
[[nodiscard]] FullViewResult full_view_covered(const Network& net, const geom::Vec2& p,
                                               double theta);

/// True iff direction `d` is *safe* for the given viewed directions
/// (Definition 1: some covering sensor within angular distance theta).
/// With zero covering sensors no direction is safe (always false); at
/// theta = pi every direction is within angular distance theta of any
/// viewed direction, so the result is simply `!viewed_dirs.empty()`.
[[nodiscard]] bool is_safe_direction(std::span<const double> viewed_dirs, double d,
                                     double theta);

/// Paper Section III: the necessary geometric condition.  The circle is cut
/// into ceil(pi/theta) sectors of angle 2*theta from `start_line`, plus the
/// remainder-bisector sector when 2*pi is not a multiple of 2*theta; every
/// sector must contain a viewed direction.
/// \pre theta in (0, pi]
[[nodiscard]] bool meets_necessary_condition(std::span<const double> viewed_dirs,
                                             double theta, double start_line = 0.0);
[[nodiscard]] bool meets_necessary_condition(const Network& net, const geom::Vec2& p,
                                             double theta, double start_line = 0.0);

/// Paper Section IV: the sufficient geometric condition — same construction
/// with sector angle theta (ceil(2*pi/theta) sectors plus remainder).
/// \pre theta in (0, pi]
[[nodiscard]] bool meets_sufficient_condition(std::span<const double> viewed_dirs,
                                              double theta, double start_line = 0.0);
[[nodiscard]] bool meets_sufficient_condition(const Network& net, const geom::Vec2& p,
                                              double theta, double start_line = 0.0);

/// k-coverage of a point (paper Section VII-B compares against
/// k = ceil(pi/theta)).
[[nodiscard]] bool k_covered(const Network& net, const geom::Vec2& p, std::size_t k);

/// The k implied by full-view coverage with effective angle theta:
/// ceil(pi/theta).
[[nodiscard]] std::size_t implied_k(double theta);

/// Validate theta; throws std::invalid_argument outside (0, pi].
void validate_theta(double theta);

}  // namespace fvc::core
