/// \file coverage.hpp
/// \brief Point-coverage predicate for the binary sector model.
///
/// All predicates take the space mode (torus by default, matching the
/// paper; plane for the boundary-effect ablation).

#pragma once

#include <optional>

#include "fvc/core/camera.hpp"
#include "fvc/geometry/space.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// True when camera `cam` covers point `p`: the displacement from the
/// camera to the point has length <= radius and its direction is within
/// fov/2 of the camera's orientation.  Boundaries are closed, matching the
/// paper's "sense perfectly in a sector" model.
[[nodiscard]] bool covers(const Camera& cam, const geom::Vec2& p,
                          geom::SpaceMode mode = geom::SpaceMode::kTorus);

/// The viewed direction of point `p` with respect to camera `cam`: the
/// polar angle of the vector P->S, in [0, 2*pi).  This is the direction
/// compared against the facing direction in Definition 1.
/// \pre p and cam.position do not coincide (returns 0 for coincident points,
/// consistent with atan2(0,0)).
[[nodiscard]] double viewed_direction(const Camera& cam, const geom::Vec2& p,
                                      geom::SpaceMode mode = geom::SpaceMode::kTorus);

/// Combined query used on hot paths: the viewed direction when `cam` covers
/// `p`, otherwise std::nullopt.  Saves recomputing the displacement.
[[nodiscard]] std::optional<double> viewed_direction_if_covered(
    const Camera& cam, const geom::Vec2& p,
    geom::SpaceMode mode = geom::SpaceMode::kTorus);

}  // namespace fvc::core
