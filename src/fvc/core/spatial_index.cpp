#include "fvc/core/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/core/candidate_index.hpp"
#include "fvc/geometry/torus.hpp"

namespace fvc::core {

SpatialIndex::SpatialIndex(std::span<const geom::Vec2> points, double query_radius) {
  if (!(query_radius > 0.0)) {
    throw std::invalid_argument("SpatialIndex: query_radius must be positive");
  }
  // Cell side must be >= query_radius so that a 3x3 block suffices.  The
  // radius floor is shared with the batched engine's candidate indexes
  // (candidate_index.hpp): both sizing rules must agree that degenerate
  // radii cannot request unbounded resolution.
  const double side = std::max(query_radius, kMinSizingRadius);
  cells_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::floor(1.0 / side)));
  // With wraparound, >=3 cells per side avoids double-visiting buckets in
  // the 3x3 loop; fall back to a single cell otherwise.
  if (cells_ < 3) {
    cells_ = 1;
  }
  if (points.size() > static_cast<std::size_t>(~std::uint32_t{0})) {
    throw std::invalid_argument("SpatialIndex: too many points");
  }

  const std::size_t buckets = cells_ * cells_;
  offsets_.assign(buckets + 1, 0);
  std::vector<std::uint32_t> bucket_of(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [cx, cy] = cell_of(points[i]);
    const auto b = static_cast<std::uint32_t>(
        static_cast<std::size_t>(cx) * cells_ + static_cast<std::size_t>(cy));
    bucket_of[i] = b;
    ++offsets_[b + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    offsets_[b + 1] += offsets_[b];
  }
  entries_.resize(points.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    entries_[cursor[bucket_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::pair<std::ptrdiff_t, std::ptrdiff_t> SpatialIndex::cell_of(const geom::Vec2& p) const {
  const geom::Vec2 w = geom::UnitTorus::wrap(p);
  auto cx = static_cast<std::ptrdiff_t>(w.x * static_cast<double>(cells_));
  auto cy = static_cast<std::ptrdiff_t>(w.y * static_cast<double>(cells_));
  const auto c = static_cast<std::ptrdiff_t>(cells_);
  cx = std::clamp<std::ptrdiff_t>(cx, 0, c - 1);
  cy = std::clamp<std::ptrdiff_t>(cy, 0, c - 1);
  return {cx, cy};
}

std::vector<std::size_t> SpatialIndex::candidates(const geom::Vec2& p) const {
  std::vector<std::size_t> out;
  for_each_candidate(p, [&out](std::size_t i) { out.push_back(i); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fvc::core
