/// \file candidate_index.hpp
/// \brief Candidate-index variants and runtime dispatch for grid_eval.
///
/// The batched grid-evaluation engine (grid_eval.hpp) answers one question
/// per grid point: *which cameras might cover this point?*  How that
/// candidate set is materialised is an implementation detail the engine
/// hides behind interchangeable *index variants*:
///
///   flat    a uniform fine-grid CSR: every camera is replicated into each
///           cell its disc overlaps, so a point lookup is a single span.
///           Resolution follows the radius-derived sizing rule (cell side
///           ~ radius / kCellsPerRadius) up to a 4*grid_side cap — the
///           historical kMaxCellsPerSide = 256 clamp is gone.
///   hier    a two-level index: cameras are binned into coarse tiles
///           (kHierSubdiv fine cells per tile side) and only *occupied*
///           tiles dense enough to be worth it are subdivided into a
///           pooled tile-local fine CSR.  Empty regions cost one offset
///           per tile instead of kHierSubdiv^2 — memory stays bounded on
///           clustered / non-uniform deployments where a uniform fine
///           grid would be mostly empty.
///   stream  a row-streamed gather: cameras are binned once by position
///           (no replication, O(n) build), and each grid row materialises
///           a compacted SoA slice of the cameras whose disc can reach the
///           row's y band.  The slice is built once per (engine, row) and
///           reused across the row's points and across block_stats blocks.
///
/// Every variant is bit-identical by construction: an index only decides
/// which *superset* of the covering cameras the classify kernel inspects,
/// and the kernel's exact radius/sector tests decide coverage — so the
/// per-point direction multiset, and therefore every downstream statistic,
/// is independent of the index (see docs/ARCHITECTURE.md, "Candidate
/// index").  Dispatch mirrors the kernel seam (cpu_features.hpp) and is
/// resolved once per engine construction:
///
///   1. a programmatic pin (`set_forced_index`, used by the CLI's
///      `--index` flag and the differential tests), else
///   2. the `FVC_FORCE_INDEX` environment variable (re-read on every
///      resolve; a set-but-empty value counts as unset), else
///   3. the preferred variant (stream).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace fvc::core {

/// The candidate-index variants.
enum class IndexVariant : std::uint8_t {
  kFlat = 0,
  kHier = 1,
  kStream = 2,
};
inline constexpr std::size_t kIndexVariantCount = 3;

/// Radius-derived sizing rule shared by every index variant (and
/// cross-referenced by the legacy per-query SpatialIndex): the bin cell
/// side targets max_radius / kCellsPerRadius so a candidate span rarely
/// spans more than a handful of cells per axis.
inline constexpr double kCellsPerRadius = 3.0;

/// Radii below this floor are treated as this floor by the sizing rules —
/// shared with SpatialIndex so degenerate zero-radius networks cannot
/// request an unbounded resolution.
inline constexpr double kMinSizingRadius = 1e-6;

/// Fine cells per coarse-tile side in the hierarchical index.
inline constexpr std::size_t kHierSubdiv = 8;

/// Occupied tiles with at most this many entries stay unsubdivided (the
/// whole-tile span is already small enough to hand to the kernel).
inline constexpr std::size_t kHierSubdivideThreshold = 16;

/// Stable lower-case name ("flat", "hier", "stream").
[[nodiscard]] std::string_view index_name(IndexVariant v);

/// Inverse of index_name; nullopt for unknown names.
[[nodiscard]] std::optional<IndexVariant> index_from_name(std::string_view name);

/// The auto-dispatch choice (stream: fastest on every measured workload).
[[nodiscard]] IndexVariant preferred_index();

/// Programmatic pin: overrides both the environment and auto-dispatch
/// until reset with nullopt.  Takes effect at the next engine
/// construction; validity is checked by resolve_index, not here.
void set_forced_index(std::optional<IndexVariant> v);
[[nodiscard]] std::optional<IndexVariant> forced_index();

/// The variant the next engine will use: programmatic pin, else
/// FVC_FORCE_INDEX, else preferred_index().  Throws std::runtime_error
/// when the environment names an unknown variant.
[[nodiscard]] IndexVariant resolve_index();

/// Process-wide dispatch counters: engines constructed per variant.
/// Exported under the engine metrics node next to the kernel counters.
void note_index_dispatch(IndexVariant v);
[[nodiscard]] std::uint64_t index_dispatch_count(IndexVariant v);

}  // namespace fvc::core
