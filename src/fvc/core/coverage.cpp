#include "fvc/core/coverage.hpp"

#include "fvc/geometry/angle.hpp"

namespace fvc::core {

namespace {

/// Shared implementation: displacement S->P, coverage test, and the P->S
/// direction, computed once.
struct CoverQuery {
  bool covered = false;
  double viewed_dir = 0.0;  // angle of P->S
};

CoverQuery query(const Camera& cam, const geom::Vec2& p, geom::SpaceMode mode) {
  const geom::Vec2 d = geom::displacement(cam.position, p, mode);  // S -> P
  CoverQuery out;
  const double r2 = cam.radius * cam.radius;
  const double n2 = d.norm2();
  if (n2 > r2) {
    return out;
  }
  if (n2 == 0.0) {
    // Point coincides with the camera: covered, viewed direction arbitrary.
    out.covered = true;
    out.viewed_dir = 0.0;
    return out;
  }
  const double dir_sp = d.angle();  // direction S -> P
  if (geom::angular_distance(dir_sp, cam.orientation) > 0.5 * cam.fov) {
    return out;
  }
  out.covered = true;
  out.viewed_dir = geom::normalize_angle(dir_sp + geom::kPi);  // P -> S
  return out;
}

}  // namespace

bool covers(const Camera& cam, const geom::Vec2& p, geom::SpaceMode mode) {
  return query(cam, p, mode).covered;
}

double viewed_direction(const Camera& cam, const geom::Vec2& p, geom::SpaceMode mode) {
  const geom::Vec2 d = geom::displacement(p, cam.position, mode);  // P -> S
  return geom::normalize_angle(d.angle());
}

std::optional<double> viewed_direction_if_covered(const Camera& cam, const geom::Vec2& p,
                                                  geom::SpaceMode mode) {
  const CoverQuery q = query(cam, p, mode);
  if (!q.covered) {
    return std::nullopt;
  }
  return q.viewed_dir;
}

}  // namespace fvc::core
