/// \file network.hpp
/// \brief A deployed camera sensor network with fast coverage queries.

#pragma once

#include <span>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/spatial_index.hpp"
#include "fvc/geometry/space.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// An immutable set of deployed cameras plus a spatial index.
/// Construction validates every camera; in torus mode positions are
/// wrapped into the unit cell.  Queries are thread-safe (const object,
/// no mutable state).
class Network {
 public:
  Network() = default;

  /// Build a network from deployed cameras.  In torus mode (the default,
  /// matching the paper) positions are wrapped onto the torus; in plane
  /// mode they must already lie in [0, 1]^2 (throws otherwise) and no
  /// coverage wraps across the boundary.
  explicit Network(std::vector<Camera> cameras,
                   geom::SpaceMode mode = geom::SpaceMode::kTorus);

  /// The geometry this network computes coverage in.
  [[nodiscard]] geom::SpaceMode mode() const { return mode_; }

  [[nodiscard]] std::span<const Camera> cameras() const { return cameras_; }
  [[nodiscard]] std::size_t size() const { return cameras_.size(); }
  [[nodiscard]] bool empty() const { return cameras_.empty(); }
  [[nodiscard]] const Camera& camera(std::size_t i) const { return cameras_.at(i); }

  /// Largest sensing radius in the network (the index's query radius).
  [[nodiscard]] double max_radius() const { return max_radius_; }

  /// Sum of `sensing_area()` over all cameras divided by the count — the
  /// empirical s_c of this deployment.
  [[nodiscard]] double mean_sensing_area() const;

  /// Indices of all cameras covering point `p`.
  [[nodiscard]] std::vector<std::size_t> covering_cameras(const geom::Vec2& p) const;

  /// Number of cameras covering `p` (coverage degree; k-coverage queries).
  [[nodiscard]] std::size_t coverage_degree(const geom::Vec2& p) const;

  /// True when at least one camera covers `p` (1-coverage).
  [[nodiscard]] bool is_covered(const geom::Vec2& p) const;

  /// Viewed directions (angles of P->S on the torus, in [0, 2*pi)) of all
  /// cameras covering `p`.  This is the input to every full-view predicate.
  [[nodiscard]] std::vector<double> viewed_directions(const geom::Vec2& p) const;

  /// Append the viewed directions of cameras covering `p` to `out`
  /// (allocation-free hot path for the region evaluators).
  void viewed_directions_into(const geom::Vec2& p, std::vector<double>& out) const;

  /// Visit `fn(camera_index)` for every camera whose bucket neighbourhood
  /// contains `p` (superset of the covering set).
  template <typename Fn>
  void for_each_candidate(const geom::Vec2& p, Fn&& fn) const {
    index_.for_each_candidate(p, std::forward<Fn>(fn));
  }

 private:
  std::vector<Camera> cameras_;
  SpatialIndex index_;
  double max_radius_ = 0.0;
  geom::SpaceMode mode_ = geom::SpaceMode::kTorus;
};

}  // namespace fvc::core
