#include "fvc/core/camera.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/geometry/angle.hpp"

namespace fvc::core {

void validate(const Camera& cam) {
  // Non-finite fields slip through ordered comparisons (NaN compares false
  // against everything), so reject them explicitly: a single NaN position
  // or radius silently poisons every coverage predicate downstream.
  if (!std::isfinite(cam.position.x) || !std::isfinite(cam.position.y)) {
    throw std::invalid_argument("Camera: position must be finite");
  }
  if (!std::isfinite(cam.orientation)) {
    throw std::invalid_argument("Camera: orientation must be finite");
  }
  if (!std::isfinite(cam.radius) || cam.radius < 0.0) {
    throw std::invalid_argument("Camera: sensing radius must be finite and non-negative");
  }
  if (!std::isfinite(cam.fov) || !(cam.fov > 0.0) || cam.fov > geom::kTwoPi) {
    throw std::invalid_argument("Camera: angle of view must be in (0, 2*pi]");
  }
}

}  // namespace fvc::core
