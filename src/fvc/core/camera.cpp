#include "fvc/core/camera.hpp"

#include <stdexcept>

#include "fvc/geometry/angle.hpp"

namespace fvc::core {

void validate(const Camera& cam) {
  if (cam.radius < 0.0) {
    throw std::invalid_argument("Camera: negative sensing radius");
  }
  if (!(cam.fov > 0.0) || cam.fov > geom::kTwoPi) {
    throw std::invalid_argument("Camera: angle of view must be in (0, 2*pi]");
  }
}

}  // namespace fvc::core
