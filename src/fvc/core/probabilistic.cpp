#include "fvc/core/probabilistic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/core/coverage.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/torus.hpp"

namespace fvc::core {

void ProbabilisticModel::validate() const {
  if (!(certain_fraction >= 0.0) || certain_fraction > 1.0) {
    throw std::invalid_argument("ProbabilisticModel: certain_fraction in [0, 1]");
  }
  if (decay < 0.0) {
    throw std::invalid_argument("ProbabilisticModel: decay must be >= 0");
  }
}

double detection_probability(const Camera& cam, const geom::Vec2& p,
                             const ProbabilisticModel& model, geom::SpaceMode mode) {
  model.validate();
  if (!covers(cam, p, mode)) {
    return 0.0;
  }
  const double d = geom::space_distance(cam.position, p, mode);
  const double r_certain = model.certain_fraction * cam.radius;
  if (d <= r_certain) {
    return 1.0;
  }
  return std::exp(-model.decay * (d - r_certain));
}

std::vector<WeightedDirection> weighted_directions(const Network& net,
                                                   const geom::Vec2& p,
                                                   const ProbabilisticModel& model) {
  model.validate();
  std::vector<WeightedDirection> out;
  net.for_each_candidate(p, [&](std::size_t i) {
    const Camera& cam = net.camera(i);
    const double prob = detection_probability(cam, p, model, net.mode());
    if (prob > 0.0) {
      out.push_back({viewed_direction(cam, p, net.mode()), prob});
    }
  });
  return out;
}

double full_view_confidence(std::span<const WeightedDirection> dirs, double theta) {
  validate_theta(theta);
  if (dirs.empty()) {
    return 0.0;
  }
  // M(d) = max{ p_i : angular_distance(d, v_i) <= theta } is piecewise
  // constant between consecutive arc endpoints; evaluate at each interval
  // midpoint and take the minimum.  O(C^2) with C = dirs.size().
  std::vector<double> breakpoints;
  breakpoints.reserve(2 * dirs.size());
  for (const WeightedDirection& wd : dirs) {
    breakpoints.push_back(geom::normalize_angle(wd.direction - theta));
    breakpoints.push_back(geom::normalize_angle(wd.direction + theta));
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  const auto envelope_at = [&](double d) {
    double best = 0.0;
    for (const WeightedDirection& wd : dirs) {
      if (geom::angular_distance(wd.direction, d) <= theta) {
        best = std::max(best, wd.probability);
      }
    }
    return best;
  };
  double confidence = 1.0;
  const std::size_t k = breakpoints.size();
  for (std::size_t i = 0; i < k; ++i) {
    const double a = breakpoints[i];
    const double b = breakpoints[(i + 1) % k];
    const double mid = geom::normalize_angle(a + 0.5 * geom::ccw_delta(a, b));
    confidence = std::min(confidence, envelope_at(mid));
    if (confidence == 0.0) {
      break;
    }
  }
  return confidence;
}

double full_view_confidence(const Network& net, const geom::Vec2& p, double theta,
                            const ProbabilisticModel& model) {
  const auto dirs = weighted_directions(net, p, model);
  return full_view_confidence(dirs, theta);
}

bool full_view_covered_with_confidence(const Network& net, const geom::Vec2& p,
                                       double theta, const ProbabilisticModel& model,
                                       double p_min) {
  if (!(p_min > 0.0) || p_min > 1.0) {
    throw std::invalid_argument("full_view_covered_with_confidence: p_min in (0, 1]");
  }
  return full_view_confidence(net, p, theta, model) >= p_min;
}

double effective_radius(double r_max, const ProbabilisticModel& model, double p_min) {
  model.validate();
  if (!(r_max > 0.0)) {
    throw std::invalid_argument("effective_radius: r_max must be positive");
  }
  if (!(p_min > 0.0) || p_min > 1.0) {
    throw std::invalid_argument("effective_radius: p_min in (0, 1]");
  }
  const double r_certain = model.certain_fraction * r_max;
  if (model.decay == 0.0 || p_min == 1.0) {
    return p_min == 1.0 ? r_certain : r_max;
  }
  // exp(-decay * (r - r_certain)) >= p_min  =>  r <= r_certain - log(p_min)/decay
  const double r = r_certain - std::log(p_min) / model.decay;
  return std::min(r, r_max);
}

}  // namespace fvc::core
