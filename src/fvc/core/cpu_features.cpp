#include "fvc/core/cpu_features.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fvc::core {

namespace {

constexpr std::array<std::string_view, kKernelVariantCount> kNames = {
    "scalar", "generic", "avx2", "neon"};

std::atomic<std::uint64_t> g_dispatch_counts[kKernelVariantCount];

/// The programmatic pin.  Encoded as variant index + 1 (0 = not pinned)
/// so the whole state fits one lock-free atomic.
std::atomic<int> g_forced{0};

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(__aarch64__)
  return true;  // AdvSIMD is baseline on AArch64
#else
  return false;
#endif
}

}  // namespace

std::string_view kernel_name(KernelVariant v) {
  return kNames.at(static_cast<std::size_t>(v));
}

std::optional<KernelVariant> kernel_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKernelVariantCount; ++i) {
    if (kNames[i] == name) {
      return static_cast<KernelVariant>(i);
    }
  }
  return std::nullopt;
}

std::size_t kernel_lanes(KernelVariant v) {
  return v == KernelVariant::kScalar ? 1 : 4;
}

bool kernel_compiled(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
    case KernelVariant::kGeneric:
      return true;
    case KernelVariant::kAvx2:
#if defined(FVC_KERNEL_AVX2)
      return true;
#else
      return false;
#endif
    case KernelVariant::kNeon:
#if defined(FVC_KERNEL_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool kernel_supported(KernelVariant v) {
  if (!kernel_compiled(v)) {
    return false;
  }
  switch (v) {
    case KernelVariant::kScalar:
    case KernelVariant::kGeneric:
      return true;
    case KernelVariant::kAvx2:
      return cpu_has_avx2();
    case KernelVariant::kNeon:
      return cpu_has_neon();
  }
  return false;
}

KernelVariant preferred_kernel() {
  if (kernel_supported(KernelVariant::kAvx2)) {
    return KernelVariant::kAvx2;
  }
  if (kernel_supported(KernelVariant::kNeon)) {
    return KernelVariant::kNeon;
  }
  return KernelVariant::kGeneric;
}

void set_forced_kernel(std::optional<KernelVariant> v) {
  g_forced.store(v.has_value() ? static_cast<int>(*v) + 1 : 0,
                 std::memory_order_relaxed);
}

std::optional<KernelVariant> forced_kernel() {
  const int raw = g_forced.load(std::memory_order_relaxed);
  if (raw == 0) {
    return std::nullopt;
  }
  return static_cast<KernelVariant>(raw - 1);
}

KernelVariant resolve_kernel() {
  auto validate = [](KernelVariant v, const char* source) {
    if (!kernel_compiled(v)) {
      throw std::runtime_error(std::string(source) + ": kernel '" +
                               std::string(kernel_name(v)) +
                               "' is not compiled into this build");
    }
    if (!kernel_supported(v)) {
      throw std::runtime_error(std::string(source) + ": kernel '" +
                               std::string(kernel_name(v)) +
                               "' is not executable on this CPU");
    }
    return v;
  };
  if (const std::optional<KernelVariant> pinned = forced_kernel()) {
    return validate(*pinned, "forced kernel");
  }
  // Re-read the environment on every resolve (engine constructions are
  // rare next to the work an engine does) so harnesses can change it
  // without restarting the process.  Set-but-empty means unset: CI matrix
  // legs and shell harnesses export FVC_FORCE_KERNEL="" for the
  // auto-dispatch configuration.
  if (const char* env = std::getenv("FVC_FORCE_KERNEL");
      env != nullptr && env[0] != '\0') {
    const std::optional<KernelVariant> v = kernel_from_name(env);
    if (!v.has_value()) {
      throw std::runtime_error(
          std::string("FVC_FORCE_KERNEL: unknown kernel '") + env +
          "' (expected scalar|generic|avx2|neon)");
    }
    return validate(*v, "FVC_FORCE_KERNEL");
  }
  return preferred_kernel();
}

void note_kernel_dispatch(KernelVariant v) {
  g_dispatch_counts[static_cast<std::size_t>(v)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t kernel_dispatch_count(KernelVariant v) {
  return g_dispatch_counts[static_cast<std::size_t>(v)].load(
      std::memory_order_relaxed);
}

}  // namespace fvc::core
