/// \file grid_eval_kernel.hpp
/// \brief The vectorized classify kernel behind GridEvalEngine, written
/// once as a template over the batch backends of simd.hpp.
///
/// The engine stores each cell's candidates as structure-of-arrays spans
/// (CandSpans).  classify_batches processes full lane groups: it computes
/// the (torus-wrapped) displacement, the radius test and the trig-free
/// field-of-view classifier with exactly the IEEE operation sequence of
/// the scalar oracle, compacts the displacements of cleanly-covered lanes
/// into xs/ys for the caller's scalar atan2 loop, and reports *special*
/// lanes — exact-arithmetic band hits and zero-distance hits — back to
/// the caller, which reruns them through the scalar per-entry path (so
/// fallback counting and classification stay bit-identical to the scalar
/// kernel).  The remainder tail (count % 4 != 0) never reaches this
/// kernel; the caller handles it with the same scalar per-entry path.
///
/// Each backend instantiation lives in its own translation unit
/// (grid_eval_kernel_{generic,avx2,neon}.cpp) so ISA-specific code can be
/// compiled with ISA-specific flags without leaking wide instructions
/// into baseline translation units: the only symbols such a TU exports
/// are its non-inline classify_* entry points, and they are called only
/// after runtime dispatch (cpu_features.hpp) has verified the CPU.

#pragma once

#include <cstddef>
#include <cstdint>

namespace fvc::core::detail {

/// Structure-of-arrays candidate spans of one engine cell, offset so
/// index 0 is the cell's first entry.
struct CandSpans {
  const double* sx;    ///< camera x
  const double* sy;    ///< camera y
  const double* r2;    ///< sensing radius squared
  const double* cu;    ///< cos(orientation)
  const double* su;    ///< sin(orientation)
  const double* q;     ///< cos(fov/2) * |cos(fov/2)|
  const double* omni;  ///< all-bits-set (as double) when fov/2 >= pi, else +0.0
};

struct ClassifyResult {
  std::size_t covered = 0;  ///< displacements compacted into xs/ys
  std::size_t special = 0;  ///< lane indices written to `special`
};

/// Classify `count` candidates (count % 4 == 0).  Appends covered
/// displacements to xs[0..covered), ys[0..covered) and writes the indices
/// of lanes that need the scalar per-entry path into special[0..special).
/// xs/ys/special must each have room for `count` entries.
using ClassifyFn = ClassifyResult (*)(const CandSpans& c, std::size_t count,
                                      double px, double py, bool torus,
                                      double* xs, double* ys,
                                      std::uint32_t* special);

ClassifyResult classify_generic(const CandSpans& c, std::size_t count, double px,
                                double py, bool torus, double* xs, double* ys,
                                std::uint32_t* special);
#if defined(FVC_KERNEL_AVX2)
ClassifyResult classify_avx2(const CandSpans& c, std::size_t count, double px,
                             double py, bool torus, double* xs, double* ys,
                             std::uint32_t* special);
#endif
#if defined(FVC_KERNEL_NEON)
ClassifyResult classify_neon(const CandSpans& c, std::size_t count, double px,
                             double py, bool torus, double* xs, double* ys,
                             std::uint32_t* special);
#endif

/// The template the per-backend TUs instantiate.  Self-contained: only
/// batch ops and raw pointers, so an ISA-specific instantiation emits no
/// shared inline symbols a baseline TU could accidentally link against.
///
/// Per lane this is the scalar classify loop of grid_eval.cpp verbatim:
///   dx = p.x - sx; [torus: dx -= round(dx); half-torus boundary fixup]
///   n2 = dx*dx + dy*dy;   dot = dx*cu + dy*su
///   lhs = dot*|dot|;      diff = lhs - q*n2;    band = 1e-9*n2
///   in_radius = n2 <= r2
///   covered   = in_radius & (omni | diff > band)
///   special   = (in_radius & ~omni & |diff| <= band) | (covered & n2 == 0)
/// Covered non-special lanes are compacted; special lanes go back to the
/// scalar path.  Same ops, same order, same rounding => bit identity.
///
/// The torus unwrap `dx -= round(dx)` + fixup is `geom::wrap_delta`
/// bit-for-bit: positions lie in [0, 1), so dx in (-1, 1) and round(dx) in
/// {-1, 0, +1}, making the subtraction exact (Sterbenz).  The backends'
/// round-to-nearest tie rules differ from std::round only at dx = +-0.5,
/// where both rules land on a remainder the d >= 0.5 fixup normalizes to
/// exactly -0.5 — so every backend agrees with the scalar oracle on every
/// input despite the tie difference.  wrap_delta's second fixup
/// (d < -0.5 => d += 1) is omitted: any round-to-nearest remainder lies in
/// [-0.5, +0.5], so that branch can never fire.
template <class B>
inline ClassifyResult classify_batches(const CandSpans& c, std::size_t count,
                                       double px, double py, bool torus,
                                       double* xs, double* ys,
                                       std::uint32_t* special) {
  static_assert(B::kWidth == 4, "classify kernels are 4-wide");
  const B vpx = B::broadcast(px);
  const B vpy = B::broadcast(py);
  const B vhalf = B::broadcast(0.5);
  const B vone = B::broadcast(1.0);
  const B veps = B::broadcast(1e-9);
  const B vzero = B::broadcast(0.0);
  ClassifyResult res;
  auto do_batch = [&](std::size_t i) {
    B dx = vpx - B::load(c.sx + i);
    B dy = vpy - B::load(c.sy + i);
    if (torus) {
      dx = dx - B::round_nearest(dx);
      dx = B::select(B::cmp_ge(dx, vhalf), dx - vone, dx);
      dy = dy - B::round_nearest(dy);
      dy = B::select(B::cmp_ge(dy, vhalf), dy - vone, dy);
    }
    const B n2 = dx * dx + dy * dy;
    const B dot = dx * B::load(c.cu + i) + dy * B::load(c.su + i);
    const B lhs = dot * B::abs(dot);
    const B diff = lhs - B::load(c.q + i) * n2;
    const B band = veps * n2;
    const B in_radius = B::cmp_le(n2, B::load(c.r2 + i));
    const B omni = B::load(c.omni + i);
    const B covered = B::bit_and(in_radius, B::bit_or(omni, B::cmp_gt(diff, band)));
    const B band_hit = B::bit_and(B::bit_andnot(in_radius, omni),
                                  B::cmp_le(B::abs(diff), band));
    const B is_special =
        B::bit_or(band_hit, B::bit_and(covered, B::cmp_eq(n2, vzero)));
    const int special_m = is_special.movemask();
    int compact_m = covered.movemask() & ~special_m;
    if (special_m != 0) [[unlikely]] {
      for (std::size_t lane = 0; lane < B::kWidth; ++lane) {
        if ((special_m >> lane) & 1) {
          special[res.special++] = static_cast<std::uint32_t>(i + lane);
        }
      }
    }
    // Unconditional left-pack (a batch with an empty mask just re-writes
    // garbage that the next batch overwrites): no branch to mispredict,
    // no serial per-lane dependency on the output cursor.  The caller's
    // xs/ys capacity (>= count) covers the full-width writes because
    // res.covered <= i at the top of every iteration.
    const std::size_t packed = B::compress_store(xs + res.covered, dx, compact_m);
    B::compress_store(ys + res.covered, dy, compact_m);
    res.covered += packed;
  };
  // Two batches per trip: identical op sequence and batch order (so results
  // stay bit-identical), but the second batch's loads and arithmetic can
  // overlap the first's mask/compaction chain.
  std::size_t i = 0;
  for (; i + 2 * B::kWidth <= count; i += 2 * B::kWidth) {
    do_batch(i);
    do_batch(i + B::kWidth);
  }
  for (; i < count; i += B::kWidth) {
    do_batch(i);
  }
  return res;
}

}  // namespace fvc::core::detail
