/// \file scaling.hpp
/// \brief Physical units: work on an L x L region instead of the unit
/// square.
///
/// All theory and simulation run on the unit square (the paper's setting).
/// Real deployments are specified in meters.  `RegionScale` converts both
/// ways: positions and radii divide by L going in, multiply going out;
/// angles and counts are scale-free.  Because the CSA is an AREA, it
/// converts by L^2 — `csa_physical` below spells that out so planners
/// don't mis-convert.

#pragma once

#include <span>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// A square physical region of side `side_length` (any consistent unit).
class RegionScale {
 public:
  /// \throws std::invalid_argument unless side_length > 0.
  explicit RegionScale(double side_length);

  [[nodiscard]] double side_length() const { return side_; }

  /// Physical -> unit-square coordinates.
  [[nodiscard]] geom::Vec2 to_unit(const geom::Vec2& physical) const;
  /// Unit-square -> physical coordinates.
  [[nodiscard]] geom::Vec2 to_physical(const geom::Vec2& unit) const;

  /// Length conversions.
  [[nodiscard]] double length_to_unit(double physical) const;
  [[nodiscard]] double length_to_physical(double unit) const;

  /// Area conversions (sensing areas, CSA values).
  [[nodiscard]] double area_to_unit(double physical) const;
  [[nodiscard]] double area_to_physical(double unit) const;

  /// Convert a physically-specified camera (position and radius in
  /// physical units; orientation/fov unchanged) into unit coordinates.
  [[nodiscard]] Camera camera_to_unit(const Camera& physical) const;
  [[nodiscard]] Camera camera_to_physical(const Camera& unit) const;

  /// Whole-fleet conveniences.
  [[nodiscard]] std::vector<Camera> fleet_to_unit(std::span<const Camera> physical) const;
  [[nodiscard]] std::vector<Camera> fleet_to_physical(std::span<const Camera> unit) const;

 private:
  double side_;
};

}  // namespace fvc::core
