/// The portable classify kernel: the 4-wide batch template over plain
/// per-lane double arithmetic, compiled at the baseline ISA (the compiler
/// may auto-vectorize the lane loops with whatever the baseline allows).
/// Always compiled; the runtime fallback on hosts without AVX2/NEON and
/// the FVC_FORCE_KERNEL=generic target of the differential tests.

#include "fvc/core/grid_eval_kernel.hpp"
#include "fvc/core/simd.hpp"

namespace fvc::core::detail {

ClassifyResult classify_generic(const CandSpans& c, std::size_t count, double px,
                                double py, bool torus, double* xs, double* ys,
                                std::uint32_t* special) {
  return classify_batches<simd::GenericBatch>(c, count, px, py, torus, xs, ys,
                                              special);
}

}  // namespace fvc::core::detail
