/// \file region_coverage.hpp
/// \brief Region-level coverage evaluation over a dense grid.
///
/// These evaluators aggregate the point predicates of full_view.hpp over a
/// `DenseGrid`, producing both the per-point fractions (the expected-area
/// interpretation of P_N / P_S in Section V) and the all-points events
/// (H_N, H_S and exact full-view coverage of the whole grid) used in the
/// Theorem 1 and 2 validations.

#pragma once

#include <cstddef>

#include "fvc/core/full_view.hpp"
#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"

namespace fvc::core {

/// Per-grid aggregate counts for one deployment.
struct RegionCoverageStats {
  std::size_t total_points = 0;
  std::size_t covered_1 = 0;        ///< 1-covered points
  std::size_t necessary_ok = 0;     ///< points meeting the necessary condition
  std::size_t full_view_ok = 0;     ///< points exactly full-view covered
  std::size_t sufficient_ok = 0;    ///< points meeting the sufficient condition
  std::size_t k_covered_ok = 0;     ///< points k-covered with k = ceil(pi/theta)
  double min_max_gap = 0.0;         ///< smallest max-gap over grid points
  double max_max_gap = 0.0;         ///< largest max-gap over grid points

  [[nodiscard]] double fraction_covered_1() const;
  [[nodiscard]] double fraction_necessary() const;
  [[nodiscard]] double fraction_full_view() const;
  [[nodiscard]] double fraction_sufficient() const;
  [[nodiscard]] double fraction_k_covered() const;

  /// Whole-grid events.
  [[nodiscard]] bool all_necessary() const { return necessary_ok == total_points; }
  [[nodiscard]] bool all_full_view() const { return full_view_ok == total_points; }
  [[nodiscard]] bool all_sufficient() const { return sufficient_ok == total_points; }
};

/// Evaluate every predicate at every grid point.  O(grid * candidates).
/// Backed by the batched `GridEvalEngine` (see grid_eval.hpp); bit-identical
/// to `evaluate_region_scalar`.
[[nodiscard]] RegionCoverageStats evaluate_region(const Network& net, const DenseGrid& grid,
                                                  double theta);

/// The original point-at-a-time evaluation.  Kept as the reference oracle
/// for the batched engine's differential tests and the bench_compare
/// regression harness; prefer `evaluate_region` everywhere else.
[[nodiscard]] RegionCoverageStats evaluate_region_scalar(const Network& net,
                                                         const DenseGrid& grid,
                                                         double theta);

/// Early-exit whole-grid events (cheaper than evaluate_region when only the
/// event bit is needed, as in the Monte-Carlo threshold scans).
[[nodiscard]] bool grid_all_necessary(const Network& net, const DenseGrid& grid,
                                      double theta);
[[nodiscard]] bool grid_all_sufficient(const Network& net, const DenseGrid& grid,
                                       double theta);
[[nodiscard]] bool grid_all_full_view(const Network& net, const DenseGrid& grid,
                                      double theta);
[[nodiscard]] bool grid_all_k_covered(const Network& net, const DenseGrid& grid,
                                      std::size_t k);

/// The minimum full-view degree over the grid: the largest k such that
/// EVERY grid point is k-full-view covered (0 when some point is not even
/// full-view covered).  One pass over the grid.
[[nodiscard]] std::size_t min_full_view_degree(const Network& net, const DenseGrid& grid,
                                               double theta);

/// Fraction of grid points that are k-full-view covered with `theta`.
[[nodiscard]] double fraction_k_full_view(const Network& net, const DenseGrid& grid,
                                          double theta, std::size_t k);

}  // namespace fvc::core
