/// \file grid.hpp
/// \brief The dense grid M used to discretise area coverage (paper
/// Section III-A, Figure 3).
///
/// Following Kumar et al. [6], the paper reduces coverage of the unit
/// square to coverage of a sqrt(m) x sqrt(m) grid with m = n log n points.
/// `DenseGrid::for_network_size(n)` reproduces that choice; an explicit
/// side length is available for tests and cheaper experiments.

#pragma once

#include <cstddef>

#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// A side x side lattice of points in the unit square (torus cell).
/// Points sit at ((i + 1/2)/side, (j + 1/2)/side), the cell centres, so the
/// grid is symmetric under the torus's translations.
class DenseGrid {
 public:
  /// \pre side >= 1
  explicit DenseGrid(std::size_t side);

  /// The paper's density: m >= n*log(n) grid points, side = ceil(sqrt(m)).
  /// \pre n >= 2
  [[nodiscard]] static DenseGrid for_network_size(std::size_t n);

  [[nodiscard]] std::size_t side() const { return side_; }
  [[nodiscard]] std::size_t size() const { return side_ * side_; }

  /// Grid point for flat index `i` in [0, size()).
  [[nodiscard]] geom::Vec2 point(std::size_t i) const;

  /// Grid point at (row, col).
  [[nodiscard]] geom::Vec2 point(std::size_t row, std::size_t col) const;

  /// Spacing between adjacent grid points.
  [[nodiscard]] double spacing() const { return 1.0 / static_cast<double>(side_); }

  /// Visit every grid point: fn(index, point).  Returning is unconditional;
  /// use `any_point` / `all_points` for early exit.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(i, point(i));
    }
  }

  /// True when `pred(point)` holds for every grid point; exits early on the
  /// first failure (the common case in the threshold experiments).
  template <typename Pred>
  [[nodiscard]] bool all_points(Pred&& pred) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!pred(point(i))) {
        return false;
      }
    }
    return true;
  }

  /// Number of grid points satisfying `pred`.
  template <typename Pred>
  [[nodiscard]] std::size_t count_points(Pred&& pred) const {
    std::size_t c = 0;
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(point(i))) {
        ++c;
      }
    }
    return c;
  }

 private:
  std::size_t side_;
};

}  // namespace fvc::core
