#include "fvc/core/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace fvc::core {

DenseGrid::DenseGrid(std::size_t side) : side_(side) {
  if (side == 0) {
    throw std::invalid_argument("DenseGrid: side must be >= 1");
  }
}

DenseGrid DenseGrid::for_network_size(std::size_t n) {
  if (n < 2) {
    throw std::invalid_argument("DenseGrid::for_network_size: need n >= 2");
  }
  const double m = static_cast<double>(n) * std::log(static_cast<double>(n));
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(m)));
  return DenseGrid(side);
}

geom::Vec2 DenseGrid::point(std::size_t i) const {
  return point(i / side_, i % side_);
}

geom::Vec2 DenseGrid::point(std::size_t row, std::size_t col) const {
  if (row >= side_ || col >= side_) {
    throw std::out_of_range("DenseGrid::point: index outside grid");
  }
  const double s = static_cast<double>(side_);
  return {(static_cast<double>(col) + 0.5) / s, (static_cast<double>(row) + 0.5) / s};
}

}  // namespace fvc::core
