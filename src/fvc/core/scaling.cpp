#include "fvc/core/scaling.hpp"

#include <stdexcept>

namespace fvc::core {

RegionScale::RegionScale(double side_length) : side_(side_length) {
  if (!(side_length > 0.0)) {
    throw std::invalid_argument("RegionScale: side_length must be positive");
  }
}

geom::Vec2 RegionScale::to_unit(const geom::Vec2& physical) const {
  return physical / side_;
}

geom::Vec2 RegionScale::to_physical(const geom::Vec2& unit) const { return unit * side_; }

double RegionScale::length_to_unit(double physical) const { return physical / side_; }

double RegionScale::length_to_physical(double unit) const { return unit * side_; }

double RegionScale::area_to_unit(double physical) const {
  return physical / (side_ * side_);
}

double RegionScale::area_to_physical(double unit) const { return unit * side_ * side_; }

Camera RegionScale::camera_to_unit(const Camera& physical) const {
  Camera cam = physical;
  cam.position = to_unit(physical.position);
  cam.radius = length_to_unit(physical.radius);
  return cam;
}

Camera RegionScale::camera_to_physical(const Camera& unit) const {
  Camera cam = unit;
  cam.position = to_physical(unit.position);
  cam.radius = length_to_physical(unit.radius);
  return cam;
}

std::vector<Camera> RegionScale::fleet_to_unit(std::span<const Camera> physical) const {
  std::vector<Camera> out;
  out.reserve(physical.size());
  for (const Camera& cam : physical) {
    out.push_back(camera_to_unit(cam));
  }
  return out;
}

std::vector<Camera> RegionScale::fleet_to_physical(std::span<const Camera> unit) const {
  std::vector<Camera> out;
  out.reserve(unit.size());
  for (const Camera& cam : unit) {
    out.push_back(camera_to_physical(cam));
  }
  return out;
}

}  // namespace fvc::core
