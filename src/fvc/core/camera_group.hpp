/// \file camera_group.hpp
/// \brief Heterogeneous camera populations (paper Section II-A).
///
/// Sensors are partitioned into `u` groups G_1..G_u; group y holds
/// `n_y = c_y * n` sensors, all with sensing radius `r_y` and angle of view
/// `phi_y`.  The weighted sensing area `s_c = sum_y c_y * s_y` with
/// `s_y = phi_y r_y^2 / 2` is the quantity the paper's CSA thresholds
/// constrain.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fvc::core {

/// Parameters of one heterogeneity group G_y.
struct CameraGroupSpec {
  double fraction = 1.0;  ///< c_y, the fraction of the population in this group
  double radius = 0.0;    ///< r_y
  double fov = 0.0;       ///< phi_y

  /// Group sensing area s_y = phi_y * r_y^2 / 2.
  [[nodiscard]] constexpr double sensing_area() const {
    return 0.5 * fov * radius * radius;
  }
};

/// A validated heterogeneous population profile: group fractions sum to 1.
class HeterogeneousProfile {
 public:
  /// \throws std::invalid_argument when `groups` is empty, any fraction is
  /// outside (0,1], fractions do not sum to 1 (tolerance 1e-9), any radius
  /// is negative, or any fov is outside (0, 2*pi].
  explicit HeterogeneousProfile(std::vector<CameraGroupSpec> groups);

  /// Single-group (homogeneous) profile.
  [[nodiscard]] static HeterogeneousProfile homogeneous(double radius, double fov);

  [[nodiscard]] std::span<const CameraGroupSpec> groups() const { return groups_; }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Weighted sensing area s_c = sum_y c_y s_y.
  [[nodiscard]] double weighted_sensing_area() const;

  /// Integer head-counts per group for a population of `n` sensors, using
  /// largest-remainder apportionment so the counts sum to exactly `n`.
  [[nodiscard]] std::vector<std::size_t> counts(std::size_t n) const;

  /// Largest sensing radius over all groups (spatial-index cell sizing).
  [[nodiscard]] double max_radius() const;

  /// A new profile whose radii are scaled by sqrt(factor) so that every
  /// group's sensing area — and hence s_c — is multiplied by `factor`.
  /// Used to dial the population to a target CSA multiple.
  /// \pre factor > 0
  [[nodiscard]] HeterogeneousProfile scaled_area(double factor) const;

  /// A new profile scaled so that `weighted_sensing_area() == target`.
  /// \pre target > 0 and the current weighted area > 0
  [[nodiscard]] HeterogeneousProfile with_weighted_area(double target) const;

 private:
  std::vector<CameraGroupSpec> groups_;
};

}  // namespace fvc::core
