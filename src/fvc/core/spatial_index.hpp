/// \file spatial_index.hpp
/// \brief Toroidal uniform-grid spatial index over camera positions.
///
/// Coverage queries only ever need cameras within the maximum sensing
/// radius of the query point.  A bucket grid with cell size >= that radius
/// reduces each query to a 3x3 cell neighbourhood (with wraparound), which
/// turns the O(n) scan per grid point into O(n r^2) expected work — the
/// difference between minutes and hours for the Theorem-1/2 validations.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// Immutable bucket-grid index over a fixed set of points on the unit torus.
class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Build an index over `points`, sized so that a query of radius
  /// `query_radius` touches at most a 3x3 cell block.
  /// \pre query_radius > 0
  SpatialIndex(std::span<const geom::Vec2> points, double query_radius);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t cells_per_side() const { return cells_; }

  /// Invoke `fn(index)` for every stored point whose *cell* is within the
  /// 3x3 neighbourhood of `p`'s cell.  Candidates may be farther than the
  /// query radius; the caller performs the exact distance/coverage test.
  template <typename Fn>
  void for_each_candidate(const geom::Vec2& p, Fn&& fn) const {
    if (entries_.empty()) {
      return;
    }
    const auto c = static_cast<std::ptrdiff_t>(cells_);
    const auto [cx, cy] = cell_of(p);
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
        const std::size_t bx = static_cast<std::size_t>((cx + dx + c) % c);
        const std::size_t by = static_cast<std::size_t>((cy + dy + c) % c);
        const std::size_t bucket = bx * cells_ + by;
        const std::uint32_t begin = offsets_[bucket];
        const std::uint32_t end = offsets_[bucket + 1];
        for (std::uint32_t i = begin; i < end; ++i) {
          fn(static_cast<std::size_t>(entries_[i]));
        }
        if (c == 1) {
          break;  // single cell: the dy loop would re-visit it
        }
      }
      if (c == 1) {
        break;
      }
    }
  }

  /// Indices of all candidates near `p` (convenience / tests).
  [[nodiscard]] std::vector<std::size_t> candidates(const geom::Vec2& p) const;

 private:
  [[nodiscard]] std::pair<std::ptrdiff_t, std::ptrdiff_t> cell_of(const geom::Vec2& p) const;

  std::size_t cells_ = 0;                ///< cells per side
  std::vector<std::uint32_t> offsets_;   ///< CSR bucket offsets, size cells_^2+1
  std::vector<std::uint32_t> entries_;   ///< point indices grouped by bucket
};

}  // namespace fvc::core
