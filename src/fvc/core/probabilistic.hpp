/// \file probabilistic.hpp
/// \brief Probabilistic sensing — the extension named in the paper's
/// conclusion ("extending our results in probabilistic sensing models").
///
/// The binary sector model detects perfectly inside the sector.  The
/// standard probabilistic refinement (Zou & Chakrabarty style, adapted to
/// sectors) keeps the angular gate hard but lets radial detection decay:
///
///   p(d) = 1                                 for d <= r_certain
///   p(d) = exp(-decay * (d - r_certain))     for r_certain < d <= r_max
///   p(d) = 0                                 for d > r_max
///
/// Full-view coverage generalizes to a CONFIDENCE: for a facing direction
/// d, the detection confidence is the best detection probability among
/// sensors whose viewed direction is within theta of d; the full-view
/// confidence of a point is the minimum over all facing directions.  The
/// binary model is the limit decay -> 0 (confidence in {0, 1}).

#pragma once

#include <span>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// Radial detection-decay model shared by the whole fleet.
struct ProbabilisticModel {
  double certain_fraction = 0.5;  ///< r_certain = certain_fraction * camera radius
  double decay = 20.0;            ///< exponential decay rate beyond r_certain

  /// Validate; throws std::invalid_argument when certain_fraction is
  /// outside [0, 1] or decay is negative.
  void validate() const;
};

/// Detection probability of camera `cam` for point `p` under `model`.
/// Zero outside the angular gate or beyond the camera radius; the camera's
/// own radius is r_max.
[[nodiscard]] double detection_probability(const Camera& cam, const geom::Vec2& p,
                                           const ProbabilisticModel& model,
                                           geom::SpaceMode mode = geom::SpaceMode::kTorus);

/// One covering sensor's contribution: its viewed direction and detection
/// probability at the queried point.
struct WeightedDirection {
  double direction = 0.0;
  double probability = 0.0;
};

/// All sensors with positive detection probability for `p`.
[[nodiscard]] std::vector<WeightedDirection> weighted_directions(
    const Network& net, const geom::Vec2& p, const ProbabilisticModel& model);

/// Full-view detection confidence of a point: min over facing directions
/// of the max detection probability among sensors within theta.  Computed
/// exactly by evaluating the candidate minima (gap bisectors and arc
/// endpoints of the weighted arrangement).
/// \pre theta in (0, pi]
[[nodiscard]] double full_view_confidence(std::span<const WeightedDirection> dirs,
                                          double theta);
[[nodiscard]] double full_view_confidence(const Network& net, const geom::Vec2& p,
                                          double theta, const ProbabilisticModel& model);

/// Thresholded predicate: full-view covered with confidence >= `p_min`.
/// Equivalent to binary full-view coverage over the sub-fleet of sensors
/// whose detection probability reaches p_min.
[[nodiscard]] bool full_view_covered_with_confidence(const Network& net,
                                                     const geom::Vec2& p, double theta,
                                                     const ProbabilisticModel& model,
                                                     double p_min);

/// The radius at which detection probability first drops below `p_min`
/// for a camera of radius r_max — the "effective radius" that converts a
/// probabilistic requirement back into the paper's binary theory (and
/// hence lets the CSA theorems price probabilistic fleets).
[[nodiscard]] double effective_radius(double r_max, const ProbabilisticModel& model,
                                      double p_min);

}  // namespace fvc::core
