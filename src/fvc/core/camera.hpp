/// \file camera.hpp
/// \brief The binary sector camera model (paper Section II-A).
///
/// A camera senses perfectly inside a sector of radius `r` and angle-of-view
/// `phi` centred on its orientation, and senses nothing outside.  Positions
/// live on the unit torus; orientations are fixed at deployment time (the
/// paper's cameras cannot steer).

#pragma once

#include <cstdint>

#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// One deployed camera sensor.
struct Camera {
  geom::Vec2 position;      ///< location on the unit torus, components in [0,1)
  double orientation = 0.0; ///< direction of the sector bisector f, radians
  double radius = 0.0;      ///< sensing radius r
  double fov = 0.0;         ///< angle of view phi, in (0, 2*pi]
  std::uint32_t group = 0;  ///< heterogeneity group index (paper's G_y)

  /// Sensing area s = phi * r^2 / 2 — the quantity the paper shows is the
  /// decisive sensing parameter under uniform deployment (Section VI-A).
  [[nodiscard]] constexpr double sensing_area() const {
    return 0.5 * fov * radius * radius;
  }
};

/// Validate a camera's parameters; throws std::invalid_argument when any
/// field is non-finite, the radius is negative, or the angle of view is
/// outside (0, 2*pi].
void validate(const Camera& cam);

}  // namespace fvc::core
