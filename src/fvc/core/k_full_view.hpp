/// \file k_full_view.hpp
/// \brief k-full-view coverage — the fault-tolerance generalization.
///
/// The paper compares full-view coverage against classical k-coverage
/// (Section VII-B) and motivates fault tolerance: "sensors often fail due
/// to unexpected events".  The natural full-view analogue makes EVERY
/// facing direction safe k times over: a point is k-full-view covered with
/// effective angle theta if for every direction d there are at least k
/// covering sensors with angle(d, PS) <= theta.  k = 1 recovers
/// Definition 1; a k-full-view covered point remains (k-1)-full-view
/// covered after any single sensor failure.
///
/// Algorithm: each covering sensor contributes a closed arc of half-width
/// theta around its viewed direction; the point is k-full-view covered iff
/// the minimum multiplicity of the arc arrangement over the whole circle
/// is >= k.  A circular sweep over arc endpoints runs in O(C log C).

#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::core {

/// Result of the multiplicity sweep.
struct KFullViewResult {
  std::size_t min_multiplicity = 0;  ///< min #sensors within theta over all directions
  /// A direction achieving the minimum (a weakest facing direction; the
  /// object looking this way is watched by the fewest cameras).
  double weakest_direction = 0.0;
};

/// Minimum over all facing directions of the number of viewed directions
/// within angular distance theta.  Empty input gives multiplicity 0 with
/// weakest_direction 0.
/// \pre theta in (0, pi]
[[nodiscard]] KFullViewResult min_direction_multiplicity(std::span<const double> viewed_dirs,
                                                         double theta);

/// Reusable endpoint-event buffer for the multiplicity sweep.  The grid
/// evaluators call the sweep once per point; routing them through this
/// scratch removes the per-point event-vector allocation.
struct MultiplicitySweepScratch {
  /// (angle, delta) endpoint events; +1 opens an arc, -1 closes one.
  std::vector<std::pair<double, int>> events;
};

/// As above, but using caller-owned scratch (allocation-free steady state).
/// The result is identical to the scratch-free overload.
[[nodiscard]] KFullViewResult min_direction_multiplicity(std::span<const double> viewed_dirs,
                                                         double theta,
                                                         MultiplicitySweepScratch& scratch);

/// True iff every facing direction has at least k covering sensors within
/// theta.  k = 0 is trivially true; k = 1 is exact full-view coverage.
[[nodiscard]] bool k_full_view_covered(std::span<const double> viewed_dirs, double theta,
                                       std::size_t k);

/// Network overloads.
[[nodiscard]] KFullViewResult min_direction_multiplicity(const Network& net,
                                                         const geom::Vec2& p, double theta);
[[nodiscard]] bool k_full_view_covered(const Network& net, const geom::Vec2& p,
                                       double theta, std::size_t k);

/// The largest k for which the point is k-full-view covered (0 when not
/// even 1-full-view covered).  Equals min_direction_multiplicity.
[[nodiscard]] std::size_t full_view_degree(const Network& net, const geom::Vec2& p,
                                           double theta);

}  // namespace fvc::core
