#include "fvc/core/k_full_view.hpp"

#include <algorithm>
#include <vector>

#include "fvc/core/full_view.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::core {

KFullViewResult min_direction_multiplicity(std::span<const double> viewed_dirs,
                                           double theta) {
  MultiplicitySweepScratch scratch;
  return min_direction_multiplicity(viewed_dirs, theta, scratch);
}

KFullViewResult min_direction_multiplicity(std::span<const double> viewed_dirs,
                                           double theta,
                                           MultiplicitySweepScratch& scratch) {
  validate_theta(theta);
  if (viewed_dirs.empty()) {
    return {0, 0.0};
  }
  // Sweep events: +1 at each arc start, -1 at each arc end.  The count
  // after processing all events at angle x is the multiplicity on the open
  // interval (x, next event).  The sweep starts just past 0, so it is
  // seeded with the arcs that CROSS 0 (start > end after normalization) —
  // arcs merely touching 0 at an endpoint are handled by their own events.
  auto& events = scratch.events;  // (angle, delta) pairs
  events.clear();
  events.reserve(2 * viewed_dirs.size());
  std::size_t initial = 0;  // arcs covering the interval just after 0
  std::size_t whole_circle = 0;  // theta == pi: arcs of width 2*pi
  for (double v : viewed_dirs) {
    const double d = geom::normalize_angle(v);
    if (theta >= geom::kPi) {
      ++whole_circle;
      continue;
    }
    const double start = geom::normalize_angle(d - theta);
    const double end = geom::normalize_angle(d + theta);
    events.emplace_back(start, +1);
    events.emplace_back(end, -1);
    if (start > end) {
      ++initial;
    }
  }
  initial += whole_circle;
  std::sort(events.begin(), events.end(),
            [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second > b.second;  // process opens before closes at equal angle
            });
  // Walk the circle from 0; the multiplicity between consecutive events is
  // constant.  Track the minimum over the open intervals just after each
  // close event (the sparsest directions) and at the interval before the
  // first event.
  std::size_t count = initial;
  std::size_t best = initial;
  // Direction achieving the minimum: sample just after the event where the
  // minimum is attained (or 0 when the pre-event stretch is the minimum).
  double best_dir = 0.0;
  double prev_angle = 0.0;
  for (const auto& [angle, delta] : events) {
    // Interval (prev_angle, angle) carries `count`.
    if (angle > prev_angle && count < best) {
      best = count;
      best_dir = 0.5 * (prev_angle + angle);
    }
    count = delta > 0 ? count + 1 : count - 1;
    prev_angle = angle;
  }
  // Final stretch back to 2*pi (same multiplicity as the initial stretch).
  if (geom::kTwoPi > prev_angle && count < best) {
    best = count;
    best_dir = geom::normalize_angle(0.5 * (prev_angle + geom::kTwoPi));
  }
  return {best, best_dir};
}

bool k_full_view_covered(std::span<const double> viewed_dirs, double theta,
                         std::size_t k) {
  if (k == 0) {
    validate_theta(theta);
    return true;
  }
  return min_direction_multiplicity(viewed_dirs, theta).min_multiplicity >= k;
}

KFullViewResult min_direction_multiplicity(const Network& net, const geom::Vec2& p,
                                           double theta) {
  const std::vector<double> dirs = net.viewed_directions(p);
  return min_direction_multiplicity(dirs, theta);
}

bool k_full_view_covered(const Network& net, const geom::Vec2& p, double theta,
                         std::size_t k) {
  const std::vector<double> dirs = net.viewed_directions(p);
  return k_full_view_covered(dirs, theta, k);
}

std::size_t full_view_degree(const Network& net, const geom::Vec2& p, double theta) {
  return min_direction_multiplicity(net, p, theta).min_multiplicity;
}

}  // namespace fvc::core
