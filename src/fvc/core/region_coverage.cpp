#include "fvc/core/region_coverage.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "fvc/core/grid_eval.hpp"
#include "fvc/core/k_full_view.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::core {

namespace {
double frac(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double RegionCoverageStats::fraction_covered_1() const {
  return frac(covered_1, total_points);
}
double RegionCoverageStats::fraction_necessary() const {
  return frac(necessary_ok, total_points);
}
double RegionCoverageStats::fraction_full_view() const {
  return frac(full_view_ok, total_points);
}
double RegionCoverageStats::fraction_sufficient() const {
  return frac(sufficient_ok, total_points);
}
double RegionCoverageStats::fraction_k_covered() const {
  return frac(k_covered_ok, total_points);
}

RegionCoverageStats evaluate_region(const Network& net, const DenseGrid& grid,
                                    double theta) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  return engine.evaluate(scratch);
}

RegionCoverageStats evaluate_region_scalar(const Network& net, const DenseGrid& grid,
                                           double theta) {
  validate_theta(theta);
  RegionCoverageStats stats;
  stats.total_points = grid.size();
  const std::size_t k = implied_k(theta);
  bool first = true;
  std::vector<double> dirs;
  grid.for_each([&](std::size_t, const geom::Vec2& p) {
    net.viewed_directions_into(p, dirs);
    if (!dirs.empty()) {
      ++stats.covered_1;
    }
    if (dirs.size() >= k) {
      ++stats.k_covered_ok;
    }
    const FullViewResult fv = full_view_covered(dirs, theta);
    if (fv.covered) {
      ++stats.full_view_ok;
    }
    if (meets_necessary_condition(dirs, theta)) {
      ++stats.necessary_ok;
    }
    if (meets_sufficient_condition(dirs, theta)) {
      ++stats.sufficient_ok;
    }
    if (first) {
      stats.min_max_gap = stats.max_max_gap = fv.max_gap;
      first = false;
    } else {
      stats.min_max_gap = std::min(stats.min_max_gap, fv.max_gap);
      stats.max_max_gap = std::max(stats.max_max_gap, fv.max_gap);
    }
  });
  return stats;
}

bool grid_all_necessary(const Network& net, const DenseGrid& grid, double theta) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    if (!engine.row_all_necessary(row, scratch)) {
      return false;
    }
  }
  return true;
}

bool grid_all_sufficient(const Network& net, const DenseGrid& grid, double theta) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    if (!engine.row_all_sufficient(row, scratch)) {
      return false;
    }
  }
  return true;
}

bool grid_all_full_view(const Network& net, const DenseGrid& grid, double theta) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    if (!engine.row_all_full_view(row, scratch)) {
      return false;
    }
  }
  return true;
}

bool grid_all_k_covered(const Network& net, const DenseGrid& grid, std::size_t k) {
  if (k == 0) {
    return true;
  }
  // The engine requires a theta, but the k-coverage scan only needs the
  // candidate binning; any valid theta works.
  const GridEvalEngine engine(net, grid, geom::kPi);
  GridEvalScratch scratch;
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    if (!engine.row_all_k_covered(row, k, scratch)) {
      return false;
    }
  }
  return true;
}

std::size_t min_full_view_degree(const Network& net, const DenseGrid& grid, double theta) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  MultiplicitySweepScratch sweep;
  std::size_t min_degree = std::numeric_limits<std::size_t>::max();
  for (std::size_t row = 0; row < engine.rows() && min_degree > 0; ++row) {
    for (std::size_t col = 0; col < engine.cols() && min_degree > 0; ++col) {
      const auto dirs = engine.sorted_directions(row, col, scratch);
      min_degree =
          std::min(min_degree, min_direction_multiplicity(dirs, theta, sweep).min_multiplicity);
    }
  }
  return min_degree == std::numeric_limits<std::size_t>::max() ? 0 : min_degree;
}

double fraction_k_full_view(const Network& net, const DenseGrid& grid, double theta,
                            std::size_t k) {
  const GridEvalEngine engine(net, grid, theta);
  GridEvalScratch scratch;
  MultiplicitySweepScratch sweep;
  std::size_t hits = 0;
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    for (std::size_t col = 0; col < engine.cols(); ++col) {
      const auto dirs = engine.sorted_directions(row, col, scratch);
      if (k == 0 || min_direction_multiplicity(dirs, theta, sweep).min_multiplicity >= k) {
        ++hits;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(grid.size());
}

}  // namespace fvc::core
