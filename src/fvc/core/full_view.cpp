#include "fvc/core/full_view.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fvc/core/coverage.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/arc_set.hpp"
#include "fvc/geometry/sector.hpp"

namespace fvc::core {

void validate_theta(double theta) {
  if (!(theta > 0.0) || theta > geom::kPi) {
    throw std::invalid_argument("full view: effective angle theta must be in (0, pi]");
  }
}

FullViewResult full_view_covered(std::span<const double> viewed_dirs, double theta) {
  validate_theta(theta);
  FullViewResult res;
  res.covering_count = viewed_dirs.size();
  if (viewed_dirs.empty()) {
    // Zero covering sensors: never full-view covered (even at theta = pi),
    // the whole circle is one gap, and every direction is unsafe — report
    // direction 0 as the witness.
    res.max_gap = geom::kTwoPi;
    res.witness_unsafe_direction = 0.0;
    return res;
  }
  const geom::CircularGap gap = geom::max_circular_gap_info(viewed_dirs);
  res.max_gap = gap.width;
  // Safe arcs have half-width theta around each viewed direction, so the
  // circle is fully safe iff no gap exceeds 2*theta (closed comparison:
  // the paper's Definition 1 uses <= theta).
  res.covered = !viewed_dirs.empty() && gap.width <= 2.0 * theta;
  if (!res.covered) {
    if (gap.after_dir.has_value()) {
      res.witness_unsafe_direction =
          geom::normalize_angle(*gap.after_dir + 0.5 * gap.width);
    } else {
      res.witness_unsafe_direction = 0.0;  // no sensors: every direction unsafe
    }
  }
  return res;
}

FullViewResult full_view_covered(const Network& net, const geom::Vec2& p, double theta) {
  const std::vector<double> dirs = net.viewed_directions(p);
  return full_view_covered(dirs, theta);
}

bool is_safe_direction(std::span<const double> viewed_dirs, double d, double theta) {
  validate_theta(theta);
  return std::any_of(viewed_dirs.begin(), viewed_dirs.end(), [&](double v) {
    return geom::angular_distance(v, d) <= theta;
  });
}

namespace {

/// Every sector of `sector_partition(sector_angle, start_line)` must contain
/// at least one viewed direction.
bool sectors_all_hit(std::span<const double> viewed_dirs, double sector_angle,
                     double start_line) {
  const std::vector<geom::Arc> sectors = geom::sector_partition(sector_angle, start_line);
  for (const geom::Arc& sector : sectors) {
    const bool hit = std::any_of(viewed_dirs.begin(), viewed_dirs.end(),
                                 [&](double v) { return sector.contains(v); });
    if (!hit) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool meets_necessary_condition(std::span<const double> viewed_dirs, double theta,
                               double start_line) {
  validate_theta(theta);
  return sectors_all_hit(viewed_dirs, 2.0 * theta, start_line);
}

bool meets_necessary_condition(const Network& net, const geom::Vec2& p, double theta,
                               double start_line) {
  const std::vector<double> dirs = net.viewed_directions(p);
  return meets_necessary_condition(dirs, theta, start_line);
}

bool meets_sufficient_condition(std::span<const double> viewed_dirs, double theta,
                                double start_line) {
  validate_theta(theta);
  return sectors_all_hit(viewed_dirs, theta, start_line);
}

bool meets_sufficient_condition(const Network& net, const geom::Vec2& p, double theta,
                                double start_line) {
  const std::vector<double> dirs = net.viewed_directions(p);
  return meets_sufficient_condition(dirs, theta, start_line);
}

bool k_covered(const Network& net, const geom::Vec2& p, std::size_t k) {
  if (k == 0) {
    return true;
  }
  std::size_t degree = 0;
  bool done = false;
  net.for_each_candidate(p, [&](std::size_t i) {
    if (done) {
      return;
    }
    if (covers(net.camera(i), p)) {
      ++degree;
      if (degree >= k) {
        done = true;
      }
    }
  });
  return degree >= k;
}

std::size_t implied_k(double theta) {
  validate_theta(theta);
  return geom::sector_count(geom::kPi, theta);
}

}  // namespace fvc::core
