/// \file grid_eval.hpp
/// \brief Batched grid-evaluation engine for the full-view hot path.
///
/// Every Monte-Carlo experiment reduces to evaluating the three full-view
/// predicates (sufficient => full-view => necessary) at every point of a
/// `DenseGrid`.  The scalar path does this one point at a time: a 3x3
/// bucket walk through the spatial index, a heap-allocated viewed-direction
/// vector, and three predicate calls that each rebuild their sector
/// partition and re-sort the directions.  This engine restructures that
/// work into a cache-friendly pipeline:
///
///   1. *Candidate indexing* — one pass over the cameras builds a spatial
///      index that answers "which cameras might cover this point?" with a
///      contiguous span per grid point.  Three interchangeable variants
///      (candidate_index.hpp: flat uniform CSR, hier two-level tiles,
///      stream row-sliced — selectable via FVC_FORCE_INDEX or the CLI's
///      --index) trade build cost, memory, and lookup tightness; all are
///      supersets of the covering set, so results never depend on the
///      choice.
///   2. *Fused kernel* — per point, the viewed angles of covering cameras
///      are gathered into a reusable scratch buffer and sorted in place
///      once; the exact max-gap test and both sector conditions are then
///      evaluated from that same sorted buffer with zero per-point heap
///      allocations (sector partitions are precomputed per scan).
///   3. *Lane-parallel classify* — candidate records are stored as
///      structure-of-arrays spans and classified 4 lanes at a time by an
///      explicitly vectorized kernel (grid_eval_kernel.hpp) selected by
///      runtime CPU dispatch (cpu_features.hpp: scalar / generic / avx2 /
///      neon, pinnable via FVC_FORCE_KERNEL or the CLI's --kernel).  Lane
///      arithmetic replicates the scalar IEEE operation sequence exactly
///      (including the per-point torus unwrap, which is `geom::wrap_delta`
///      lane-for-lane); the remainder tail and exact-arithmetic band hits
///      reuse the scalar per-entry path, and atan2-bearing direction
///      emission stays scalar — so every variant is bit-identical
///      (enforced by tests/core/test_grid_eval_kernels).
///   4. *Row batching* — rows are independent work units, so callers can
///      evaluate them serially (`evaluate`), or hand contiguous row blocks
///      to `sim::parallel_for_blocked` via `block_stats` and merge the
///      per-block results in block order (`sim::evaluate_region_parallel`),
///      which keeps results bit-identical for any thread count and grain.
///      The stream index piggybacks on this shape: each worker's scratch
///      caches the current row's candidate slice, built once per
///      (engine, row) and reused across the row's points and across the
///      blocks a worker claims.
///
/// Determinism contract: for a fixed (network, grid, theta) every method is
/// a pure function of its arguments, and every result is **bit-identical**
/// to the scalar oracle (`full_view_covered`, `meets_necessary_condition`,
/// `meets_sufficient_condition`, `evaluate_region_scalar`) — the engine
/// gathers exactly the same set of covering cameras and replicates the
/// oracle's floating-point arithmetic.  `tests/core/test_grid_eval.cpp`
/// enforces this differentially over randomized deployments, and
/// `tests/core/test_candidate_index.cpp` over index variants and
/// clustered deployments.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fvc/core/candidate_index.hpp"
#include "fvc/core/cpu_features.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"
#include "fvc/core/region_coverage.hpp"
#include "fvc/geometry/arc_set.hpp"
#include "fvc/obs/metrics.hpp"

namespace fvc::obs {
class MetricsNode;  // run_metrics.hpp; kept out of this hot header
}

namespace fvc::core {

namespace detail {
// grid_eval_kernel.hpp; kept out of this hot header.  The alias must
// match detail::ClassifyFn there (the structs may stay incomplete in a
// function-pointer type).
struct CandSpans;
struct ClassifyResult;
using ClassifyFn = ClassifyResult (*)(const CandSpans& c, std::size_t count,
                                      double px, double py, bool torus,
                                      double* xs, double* ys,
                                      std::uint32_t* special);
}  // namespace detail

/// Engine observability counters (see fvc/obs).  Attached to a scratch —
/// hence per worker thread, merged by the coordinating caller — so the
/// hot path stays synchronization-free.  When no counters are attached
/// the kernel pays one pointer test per grid *point*, never per
/// candidate, and results are unchanged either way (counting does not
/// touch the arithmetic).  `candidates_total` / `candidates_per_point`
/// describe the active index's candidate spans, so they legitimately
/// differ across index variants; every other field is index-invariant.
struct GridEvalCounters {
  std::uint64_t points = 0;            ///< grid points gathered
  std::uint64_t candidates_total = 0;  ///< indexed candidates scanned
  std::uint64_t directions_total = 0;  ///< covering directions emitted
  std::uint64_t trig_fallbacks = 0;    ///< exact-arithmetic band fallbacks
  obs::LogHistogram candidates_per_point;

  void merge(const GridEvalCounters& other) {
    points += other.points;
    candidates_total += other.candidates_total;
    directions_total += other.directions_total;
    trig_fallbacks += other.trig_fallbacks;
    candidates_per_point.merge(other.candidates_per_point);
  }

  /// Export into a metrics node (counters plus the candidates-per-point
  /// histogram).
  void describe(obs::MetricsNode& node) const;
};

/// Reusable scratch buffers for the fused kernel.  One instance per worker
/// thread; after warm-up the kernel performs no heap allocations.
struct GridEvalScratch {
  std::vector<double> angles;  ///< sorted viewed directions of one point
  std::vector<double> dxs;     ///< displacements of covered candidates
  std::vector<double> dys;     ///< (compacted by the classify loop)
  /// Lane indices the vectorized kernel routes back to the scalar path
  /// (exact-arithmetic band hits, zero-distance hits).
  std::vector<std::uint32_t> special;
  /// Optional metrics destination; null (the default) disables counting.
  GridEvalCounters* counters = nullptr;

  /// Arbitrary-point candidate view (stream index only): the compacted
  /// SoA records of the candidates near one off-lattice point, copied out
  /// of the per-camera pool, plus the parallel camera ids.  `eval_point`
  /// materialises these; the table indexes answer from their own pools
  /// and never touch them.
  std::vector<double> point_soa;
  std::vector<std::uint32_t> point_ids;

  /// Stream-index row slice: the compacted SoA of cameras whose disc can
  /// reach one grid row's y band, bucketed by extended x cell (ghost
  /// columns replicate near-seam cameras so every per-point window is one
  /// contiguous, duplicate-free range).  Built lazily, keyed by
  /// (engine generation, row) so a scratch can serve many engines and a
  /// worker revisits a row's slice for free across block_stats blocks.
  struct RowSlice {
    std::uint64_t engine_gen = 0;  ///< 0 = empty (generations start at 1)
    std::size_t row = 0;
    std::vector<double> soa;             ///< 7 field blocks, `stride` each
    std::size_t stride = 0;              ///< == total slice entries
    std::vector<std::uint32_t> ids;      ///< camera ids parallel to soa
    std::vector<std::uint32_t> offsets;  ///< per extended-x-cell CSR
    std::vector<std::uint32_t> cursors;  ///< build scratch: scatter cursors
    std::vector<std::uint32_t> survivors;  ///< build scratch: y-band hits
  };
  RowSlice slice;
};

/// Predicate aggregates over one grid row (the engine's unit of batching).
struct GridRowStats {
  std::size_t covered_1 = 0;
  std::size_t necessary_ok = 0;
  std::size_t full_view_ok = 0;
  std::size_t sufficient_ok = 0;
  std::size_t k_covered_ok = 0;
  double min_max_gap = 0.0;  ///< over the row's points
  double max_max_gap = 0.0;
};

/// Fused three-predicate answer at one (possibly off-lattice) point.
struct PointEval {
  FullViewResult full_view;
  bool necessary = false;
  bool sufficient = false;
};

/// Early-exit event bits of one row, mirroring `run_trial_events`.
struct GridRowEvents {
  bool all_necessary = true;
  bool all_full_view = true;
  bool all_sufficient = true;
};

/// The batched engine.  Holds a reference to the network; the network (and
/// the grid's dimensions) must outlive the engine.
class GridEvalEngine {
 public:
  /// Precompute sector partitions and build the candidate index.
  /// \pre theta in (0, pi] (throws std::invalid_argument otherwise)
  GridEvalEngine(const Network& net, const DenseGrid& grid, double theta);

  [[nodiscard]] std::size_t rows() const { return grid_.side(); }
  [[nodiscard]] std::size_t cols() const { return grid_.side(); }
  [[nodiscard]] double theta() const { return theta_; }

  /// Gather the viewed directions of cameras covering grid point
  /// (row, col) into `scratch.angles`, sorted ascending.  The returned span
  /// aliases the scratch buffer and is invalidated by the next call.
  std::span<const double> sorted_directions(std::size_t row, std::size_t col,
                                            GridEvalScratch& scratch) const;

  /// Exact full-view result at one grid point; bit-identical to
  /// `full_view_covered(net, grid.point(row, col), theta)`.
  [[nodiscard]] FullViewResult point_full_view(std::size_t row, std::size_t col,
                                               GridEvalScratch& scratch) const;

  /// Sector conditions at one grid point; bit-identical to the
  /// `meets_*_condition(net, p, theta)` oracles (start_line = 0).
  [[nodiscard]] bool point_necessary(std::size_t row, std::size_t col,
                                     GridEvalScratch& scratch) const;
  [[nodiscard]] bool point_sufficient(std::size_t row, std::size_t col,
                                      GridEvalScratch& scratch) const;

  /// All predicates fused over one row.  \pre row < rows()
  [[nodiscard]] GridRowStats row_stats(std::size_t row, GridEvalScratch& scratch) const;

  /// All predicates fused over the contiguous row block
  /// [row_begin, row_end), reduced in row order — so folding the per-block
  /// results of a partition of [0, rows()) in block order replays the
  /// serial scan's reduction exactly (the blocked scheduler's bit-identity
  /// contract; see sim/parallel_region.hpp).  One engine call per block
  /// keeps the parallel scan's callback cost at one indirection per block
  /// rather than per row.  \pre row_begin < row_end <= rows()
  [[nodiscard]] GridRowStats block_stats(std::size_t row_begin, std::size_t row_end,
                                         GridEvalScratch& scratch) const;

  /// All predicates fused over the whole grid (serial row loop).
  /// Bit-identical to `evaluate_region_scalar`.
  [[nodiscard]] RegionCoverageStats evaluate(GridEvalScratch& scratch) const;

  /// Early-exit event evaluation of one row.  Returns immediately on the
  /// first necessary-condition failure (with every bit false, matching the
  /// trial semantics: the necessary condition is necessary, so nothing can
  /// hold).  `need_full_view` / `need_sufficient` skip predicates the
  /// caller has already falsified on earlier rows.
  [[nodiscard]] GridRowEvents row_events(std::size_t row, GridEvalScratch& scratch,
                                         bool need_full_view,
                                         bool need_sufficient) const;

  /// Early-exit single-predicate row scans backing the `grid_all_*` API.
  [[nodiscard]] bool row_all_necessary(std::size_t row, GridEvalScratch& scratch) const;
  [[nodiscard]] bool row_all_sufficient(std::size_t row, GridEvalScratch& scratch) const;
  [[nodiscard]] bool row_all_full_view(std::size_t row, GridEvalScratch& scratch) const;

  /// True when every point of the row is covered by at least `k` cameras.
  /// Counts coverage only (no angle gathering), with per-point early exit.
  [[nodiscard]] bool row_all_k_covered(std::size_t row, std::size_t k,
                                       GridEvalScratch& scratch) const;

  /// All three predicates at an arbitrary point `p` in [0, 1]^2 — one
  /// candidate gather and one sort feed the gap scan and both sector
  /// conditions.  Bit-identical to the scalar oracles
  /// (`full_view_covered`, `meets_necessary_condition`,
  /// `meets_sufficient_condition`) at the same point: the candidate span
  /// is a duplicate-free superset of the covering set for *any* point
  /// (not just cell centers), the per-entry classify replicates the
  /// oracle's IEEE operation sequence, and the predicates are functions
  /// of the covered direction set alone.  This is the serve daemon's
  /// batched point-query path (api::Session::query_points).
  [[nodiscard]] PointEval eval_point(const geom::Vec2& p,
                                     GridEvalScratch& scratch) const;

  /// Candidate camera indices for the point `p` — a duplicate-free
  /// superset of the cameras covering `p` (for the table indexes: of any
  /// point in `p`'s cell).  With the stream index the span aliases a
  /// thread-local buffer and is invalidated by the next call on the same
  /// thread; the table indexes return a stable span into the engine.
  [[nodiscard]] std::span<const std::uint32_t> candidates(const geom::Vec2& p) const;

  /// Exact candidate-span width the active index hands the kernel for
  /// grid point (row, col) — the per-point cost the candidates-per-point
  /// budget gates (tools/bench_scale).
  [[nodiscard]] std::size_t point_candidate_count(std::size_t row, std::size_t col,
                                                  GridEvalScratch& scratch) const;

  /// Index resolution per side (diagnostics / tests).  All variants size
  /// by the same radius-derived rule, so this is index-invariant.
  [[nodiscard]] std::size_t cells_per_side() const { return cells_; }

  /// The sizing rule's pre-cap target, and whether the cap bit (so a
  /// coarser-than-ideal index is visible in metrics, not silent).
  [[nodiscard]] std::size_t cells_target() const { return cells_target_; }
  [[nodiscard]] bool cells_clamped() const { return cells_clamped_; }

  /// Heap bytes held by the candidate index (offsets + entries + SoA
  /// pools).  The hierarchical index's memory-bound contract is asserted
  /// against this in tests/core/test_candidate_index.cpp.
  [[nodiscard]] std::size_t index_bytes() const;

  /// Wall time spent building the candidate index in the constructor (the
  /// "build" stage; always measured — one clock pair per construction).
  [[nodiscard]] std::uint64_t build_ns() const { return build_ns_; }

  /// Candidate-bin shape, computed on demand.  Bins are the active
  /// index's leaves: flat cells, hier tiles/fine cells, stream strips.
  struct BinOccupancy {
    std::size_t cells = 0;         ///< total bins
    std::size_t entries = 0;       ///< (bin, camera) entries
    std::size_t empty_cells = 0;   ///< bins with no candidates
    std::size_t max_per_cell = 0;  ///< densest bin
    double mean_per_cell = 0.0;    ///< entries / cells
  };
  [[nodiscard]] BinOccupancy occupancy() const;

  /// Export the engine's static shape (bin occupancy, build time, camera
  /// count, active kernel/index and dispatch counters) into a metrics
  /// node; dynamic counters come from the scratch's `GridEvalCounters`
  /// and are merged in by the caller.
  void describe(obs::MetricsNode& node) const;

  /// The kernel variant runtime dispatch selected for this engine.
  [[nodiscard]] KernelVariant kernel() const { return kernel_; }

  /// The candidate-index variant runtime dispatch selected for this engine.
  [[nodiscard]] IndexVariant index() const { return index_; }

 private:
  /// Candidate records in structure-of-arrays layout: one parallel span
  /// per field, indexed by entry, so the vectorized kernel loads each
  /// field as one contiguous lane group.  `q` is the signed square of
  /// cos(fov/2), used by the trig-free field-of-view classifier; `omni` is
  /// an all-bits-set double mask (never used arithmetically) for cameras
  /// with fov/2 >= pi.  The torus unwrap shift is NOT stored: the classify
  /// paths recompute it per point as `d -= round(d)` plus wrap_delta's
  /// boundary fixups, which is both exact (see grid_eval_kernel.hpp) and
  /// cheaper than streaming two more field blocks through the kernel.
  /// One contiguous buffer of seven field blocks (`stride` doubles each) —
  /// a single allocation, because engine construction is on the hot path
  /// of Monte-Carlo trials and separate quarter-megabyte vectors cost
  /// ~1 ms of page faults per engine.
  struct CandSoA {
    std::vector<double> data;
    std::size_t stride = 0;
    void resize(std::size_t n);
    // NOLINTBEGIN(readability-identifier-naming) — span accessors
    [[nodiscard]] const double* sx() const { return data.data(); }
    [[nodiscard]] const double* sy() const { return data.data() + stride; }
    [[nodiscard]] const double* r2() const { return data.data() + 2 * stride; }
    [[nodiscard]] const double* cu() const { return data.data() + 3 * stride; }
    [[nodiscard]] const double* su() const { return data.data() + 4 * stride; }
    [[nodiscard]] const double* q() const { return data.data() + 5 * stride; }
    [[nodiscard]] const double* omni() const { return data.data() + 6 * stride; }
    [[nodiscard]] double* mut(std::size_t field) { return data.data() + field * stride; }
    // NOLINTEND(readability-identifier-naming)
  };

  /// A resolved candidate span for one grid point, independent of which
  /// index produced it: SoA field pointers pre-offset to the span start
  /// (field f at `base + f * stride`), plus the parallel camera ids the
  /// exact-arithmetic fallback needs.  This is the one seam between the
  /// index variants and the (index-agnostic) classify/gather pipeline.
  struct CandView {
    const double* base = nullptr;
    std::size_t stride = 0;
    const std::uint32_t* ids = nullptr;
    std::size_t count = 0;
    // NOLINTBEGIN(readability-identifier-naming) — span accessors
    [[nodiscard]] const double* sx() const { return base; }
    [[nodiscard]] const double* sy() const { return base + stride; }
    [[nodiscard]] const double* r2() const { return base + 2 * stride; }
    [[nodiscard]] const double* cu() const { return base + 3 * stride; }
    [[nodiscard]] const double* su() const { return base + 4 * stride; }
    [[nodiscard]] const double* q() const { return base + 5 * stride; }
    [[nodiscard]] const double* omni() const { return base + 6 * stride; }
    // NOLINTEND(readability-identifier-naming)
  };

  /// Shared sizing: cells_ / cells_target_ / cells_clamped_ from the
  /// radius-derived rule (candidate_index.hpp).
  void compute_cells();

  /// Index builders (exactly one runs, per the dispatched variant).
  void build_flat();
  void build_hier();
  void build_stream();

  /// (camera, fine cell) window enumeration shared by flat and hier.
  struct CellPair {
    std::uint32_t key;  ///< fine-cell bucket (counting-sort key)
    std::uint32_t cam;
  };
  void enumerate_cell_pairs(std::vector<CellPair>& pairs) const;

  /// Fill `soa` with the per-camera fused-kernel record of each id in
  /// `ids` (flat/hier: one per entry; stream: one per camera).
  void fill_soa(CandSoA& soa, std::span<const std::uint32_t> ids) const;

  /// Per-variant span resolution.  `stream_view` materialises (or reuses)
  /// the row slice in `scratch`.
  [[nodiscard]] CandView flat_view(const geom::Vec2& p) const;
  [[nodiscard]] CandView hier_view(const geom::Vec2& p) const;
  [[nodiscard]] CandView stream_view(std::size_t row, const geom::Vec2& p,
                                     GridEvalScratch& scratch) const;
  [[nodiscard]] CandView point_view(std::size_t row, const geom::Vec2& p,
                                    GridEvalScratch& scratch) const;
  void build_row_slice(std::size_t row, GridEvalScratch& scratch) const;

  /// Row-independent span resolution for `eval_point`: table indexes
  /// answer positionally; the stream index compacts the `candidates(p)`
  /// ids into `scratch.point_soa` / `scratch.point_ids` (no row slice —
  /// an off-lattice y has no grid row).
  [[nodiscard]] CandView arbitrary_view(const geom::Vec2& p,
                                        GridEvalScratch& scratch) const;

  /// In-place sort of `scratch.angles` (the tail of `sorted_directions`,
  /// shared with `eval_point`): insertion sort for small buffers, a
  /// 32-bucket counting presort for mid-sized ones, std::sort above.
  static void sort_directions(GridEvalScratch& scratch);

  [[nodiscard]] std::size_t point_cell(const geom::Vec2& p) const;

  /// The scalar per-entry classify path (also the oracle): classifies view
  /// entry `e` against `p`, appending immediate directions (fallback-band
  /// and zero-distance hits) to `out` and compacting covered displacements
  /// into xs/ys at m.  Shared by the scalar kernel loop, the vectorized
  /// kernel's remainder tail, and its special-lane replay.
  void classify_entry(const CandView& view, std::size_t e, const geom::Vec2& p,
                      GridEvalScratch& scratch, std::vector<double>& out, double* xs,
                      double* ys, std::size_t& m) const;

  /// Fused gather: viewed directions of all covering cameras into
  /// `scratch.angles` (unsorted); the allocation-free core of
  /// `sorted_directions`.
  void gather_directions(const geom::Vec2& p, const CandView& view,
                         GridEvalScratch& scratch) const;

  /// Covering-camera count with early exit at `k` (no angle computation on
  /// the fast path).
  [[nodiscard]] std::size_t covered_count_at_least(const geom::Vec2& p,
                                                   const CandView& view,
                                                   std::size_t k) const;

  const Network* net_ = nullptr;
  DenseGrid grid_;
  double theta_ = 0.0;
  std::uint64_t build_ns_ = 0;
  std::size_t implied_k_ = 0;
  geom::SpaceMode mode_ = geom::SpaceMode::kTorus;
  KernelVariant kernel_ = KernelVariant::kScalar;
  IndexVariant index_ = IndexVariant::kFlat;
  detail::ClassifyFn classify_ = nullptr;  ///< non-null for vector variants
  std::uint64_t generation_ = 0;  ///< process-unique; keys scratch row slices
  std::vector<geom::Arc> necessary_arcs_;   ///< 2*theta partition, start 0
  std::vector<geom::Arc> sufficient_arcs_;  ///< theta partition, start 0

  // Shared sizing (all variants use the same rule, so cells_per_side() is
  // index-invariant for a given network/grid).
  std::size_t cells_ = 1;
  std::size_t cells_target_ = 1;
  bool cells_clamped_ = false;

  // flat: uniform fine-grid CSR — cameras per cell, one SoA record per
  // (cell, camera) entry.  hier reuses the entry pool (cell_entries_,
  // soa_) with its own offset structures.
  std::vector<std::uint32_t> cell_offsets_;  ///< flat: size cells_^2 + 1
  std::vector<std::uint32_t> cell_entries_;  ///< camera indices per bin
  CandSoA soa_;                              ///< parallel to cell_entries_

  // hier: coarse tiles of kHierSubdiv^2 fine cells; only occupied tiles
  // above the subdivision threshold get a pooled tile-local fine CSR.
  std::size_t tiles_ = 0;                    ///< coarse tiles per side
  std::vector<std::uint32_t> tile_offsets_;  ///< size tiles_^2 + 1
  std::vector<std::uint32_t> tile_slot_;     ///< fine slot + 1; 0 = whole tile
  std::vector<std::uint32_t> fine_offsets_;  ///< (sub^2+1) absolute offsets/slot

  // stream: cameras binned once by position (no replication); row slices
  // are materialised per scratch.
  std::vector<std::uint32_t> strip_offsets_;  ///< size cells_ + 1
  std::vector<std::uint32_t> strip_entries_;  ///< size n (camera ids)
  CandSoA cam_soa_;                           ///< per camera (stride = n)
  double max_r_ = 0.0;        ///< net max radius (slice band half-height)
  std::ptrdiff_t ghost_ = 0;  ///< ghost x cells per slice side (torus)
  bool stream_whole_ = false;  ///< degenerate: window spans the whole axis
};

/// Export the active kernel choice (name, lane width) and the process-wide
/// dispatch counters into `node` — the observability face of
/// cpu_features.hpp, shared by GridEvalEngine::describe and the sim
/// layer's trial metering.
void describe_kernel_dispatch(KernelVariant active, obs::MetricsNode& node);

/// The candidate-index counterpart: active index flag plus process-wide
/// per-variant engine counts (candidate_index.hpp).
void describe_index_dispatch(IndexVariant active, obs::MetricsNode& node);

}  // namespace fvc::core
