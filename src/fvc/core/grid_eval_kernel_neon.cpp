/// The NEON classify kernel (AArch64, where AdvSIMD is baseline — so no
/// special compile flags are needed, only a dedicated TU for symmetry
/// with the AVX2 variant and for per-variant differential testing).

#if !defined(__aarch64__)
#error "grid_eval_kernel_neon.cpp is AArch64-only"
#endif

#include "fvc/core/grid_eval_kernel.hpp"
#include "fvc/core/simd.hpp"

namespace fvc::core::detail {

ClassifyResult classify_neon(const CandSpans& c, std::size_t count, double px,
                             double py, bool torus, double* xs, double* ys,
                             std::uint32_t* special) {
  return classify_batches<simd::NeonBatch>(c, count, px, py, torus, xs, ys,
                                           special);
}

}  // namespace fvc::core::detail
