/// \file cpu_features.hpp
/// \brief Runtime CPU capability probe and grid-eval kernel dispatch.
///
/// The batched grid-evaluation engine (grid_eval.hpp) has one hot inner
/// loop — the per-candidate classify — implemented as interchangeable
/// *kernel variants*:
///
///   scalar   the per-entry oracle loop (lane width 1); always available
///            and the reference every other variant is tested against
///   generic  the 4-wide batch kernel over the portable fallback backend
///            of simd.hpp (plain per-lane double arithmetic the compiler
///            may auto-vectorize); always available
///   avx2     the same batch kernel over AVX2 intrinsics; compiled only
///            on x86-64 with GCC/Clang, runnable only when the CPU
///            reports AVX2
///   neon     the same batch kernel over NEON intrinsics; compiled only
///            on AArch64 (where NEON is baseline)
///
/// Every variant is bit-identical by construction: lane arithmetic is the
/// same IEEE mul/add/compare sequence as the scalar oracle (see
/// docs/ARCHITECTURE.md).  Dispatch therefore only affects speed, never
/// results, and is resolved once per engine construction:
///
///   1. a programmatic pin (`set_forced_kernel`, used by the CLI's
///      `--kernel` flag and the differential tests), else
///   2. the `FVC_FORCE_KERNEL` environment variable (re-read on every
///      resolve so tests and harnesses can change it; a set-but-empty
///      value counts as unset), else
///   3. the best variant the running CPU supports.
///
/// Pinning a variant the build does not contain or the CPU cannot execute
/// is an error (std::runtime_error), not a silent fallback — CI legs that
/// force a variant must fail loudly when the runner cannot execute it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace fvc::core {

/// The grid-eval kernel variants, in preference order (later = wider ISA).
enum class KernelVariant : std::uint8_t {
  kScalar = 0,
  kGeneric = 1,
  kAvx2 = 2,
  kNeon = 3,
};
inline constexpr std::size_t kKernelVariantCount = 4;

/// Stable lower-case name ("scalar", "generic", "avx2", "neon").
[[nodiscard]] std::string_view kernel_name(KernelVariant v);

/// Inverse of kernel_name; nullopt for unknown names.
[[nodiscard]] std::optional<KernelVariant> kernel_from_name(std::string_view name);

/// Double lanes the variant processes per step (1 for scalar, else 4).
[[nodiscard]] std::size_t kernel_lanes(KernelVariant v);

/// True when the variant's kernel was compiled into this build.
[[nodiscard]] bool kernel_compiled(KernelVariant v);

/// True when the variant is compiled AND the running CPU can execute it.
[[nodiscard]] bool kernel_supported(KernelVariant v);

/// The widest supported variant (the auto-dispatch choice).
[[nodiscard]] KernelVariant preferred_kernel();

/// Programmatic pin: overrides both the environment and auto-dispatch
/// until reset with nullopt.  Takes effect at the next engine
/// construction; validity is checked by resolve_kernel, not here.
void set_forced_kernel(std::optional<KernelVariant> v);
[[nodiscard]] std::optional<KernelVariant> forced_kernel();

/// The variant the next engine will use: programmatic pin, else
/// FVC_FORCE_KERNEL, else preferred_kernel().  Throws std::runtime_error
/// when a pinned variant is unknown, not compiled in, or not executable
/// on this CPU.
[[nodiscard]] KernelVariant resolve_kernel();

/// Process-wide dispatch counters: engines constructed per variant.
/// Exported under the engine metrics node by describe_kernel_dispatch.
void note_kernel_dispatch(KernelVariant v);
[[nodiscard]] std::uint64_t kernel_dispatch_count(KernelVariant v);

}  // namespace fvc::core
