#include "fvc/core/camera_group.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "fvc/geometry/angle.hpp"

namespace fvc::core {

HeterogeneousProfile::HeterogeneousProfile(std::vector<CameraGroupSpec> groups)
    : groups_(std::move(groups)) {
  if (groups_.empty()) {
    throw std::invalid_argument("HeterogeneousProfile: need at least one group");
  }
  double total = 0.0;
  for (const auto& g : groups_) {
    if (!(g.fraction > 0.0) || g.fraction > 1.0) {
      throw std::invalid_argument("HeterogeneousProfile: fraction must be in (0,1]");
    }
    if (g.radius < 0.0) {
      throw std::invalid_argument("HeterogeneousProfile: negative radius");
    }
    if (!(g.fov > 0.0) || g.fov > geom::kTwoPi) {
      throw std::invalid_argument("HeterogeneousProfile: fov must be in (0, 2*pi]");
    }
    total += g.fraction;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("HeterogeneousProfile: fractions must sum to 1");
  }
}

HeterogeneousProfile HeterogeneousProfile::homogeneous(double radius, double fov) {
  return HeterogeneousProfile({CameraGroupSpec{1.0, radius, fov}});
}

double HeterogeneousProfile::weighted_sensing_area() const {
  double s = 0.0;
  for (const auto& g : groups_) {
    s += g.fraction * g.sensing_area();
  }
  return s;
}

std::vector<std::size_t> HeterogeneousProfile::counts(std::size_t n) const {
  std::vector<std::size_t> out(groups_.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(groups_.size());
  std::size_t assigned = 0;
  for (std::size_t y = 0; y < groups_.size(); ++y) {
    const double exact = groups_[y].fraction * static_cast<double>(n);
    out[y] = static_cast<std::size_t>(std::floor(exact));
    assigned += out[y];
    remainders.emplace_back(exact - std::floor(exact), y);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < n; ++i, ++assigned) {
    ++out[remainders[i % remainders.size()].second];
  }
  return out;
}

double HeterogeneousProfile::max_radius() const {
  double r = 0.0;
  for (const auto& g : groups_) {
    r = std::max(r, g.radius);
  }
  return r;
}

HeterogeneousProfile HeterogeneousProfile::scaled_area(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("scaled_area: factor must be positive");
  }
  std::vector<CameraGroupSpec> scaled = groups_;
  const double rscale = std::sqrt(factor);
  for (auto& g : scaled) {
    g.radius *= rscale;
  }
  return HeterogeneousProfile(std::move(scaled));
}

HeterogeneousProfile HeterogeneousProfile::with_weighted_area(double target) const {
  if (!(target > 0.0)) {
    throw std::invalid_argument("with_weighted_area: target must be positive");
  }
  const double current = weighted_sensing_area();
  if (!(current > 0.0)) {
    throw std::invalid_argument("with_weighted_area: profile has zero sensing area");
  }
  return scaled_area(target / current);
}

}  // namespace fvc::core
