#include "fvc/core/grid_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fvc/core/coverage.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/sector.hpp"
#include "fvc/obs/run_metrics.hpp"

namespace fvc::core {

namespace {

/// ccw_delta for inputs already normalized to [0, 2*pi).  Bit-identical to
/// `geom::ccw_delta(from, to)` on that domain: there, fmod is the identity
/// (|to - from| < 2*pi), so the only operations are the subtraction, the
/// conditional + 2*pi, and the wrap-to-zero guard — replicated here without
/// the fmod call.  tests/core/test_grid_eval.cpp checks the equivalence.
inline double ccw_from_normalized(double from, double to) {
  double d = to - from;
  if (d < 0.0) {
    d += geom::kTwoPi;
  }
  if (d >= geom::kTwoPi) {
    d = 0.0;
  }
  return d;
}

/// `sectors_all_hit` of the scalar oracle, over precomputed arcs and the
/// sorted angle buffer.  Arc containment is closed on both endpoints, as in
/// `geom::angle_in_arc` (width is clamped to [0, 2*pi] by construction, so
/// the oracle's width >= 2*pi fast path coincides with the comparison).
/// Exactness of the two-candidate test: split the directions at the arc
/// start s.  For d >= s the predicate value is fl(d - s), monotone in d, so
/// if any such d hits then the FIRST d >= s hits; for d < s it is
/// fl(fl(d - s) + 2*pi), also monotone, so if any such d hits then the
/// smallest direction hits.  Testing those two candidates with the exact
/// predicate therefore decides existence.  Partition arcs have ascending
/// starts, so the first-candidate cursor advances monotonically and the
/// whole check is one merged sweep.
inline bool arcs_all_hit(std::span<const double> sorted_dirs,
                         std::span<const geom::Arc> arcs) {
  if (sorted_dirs.empty()) {
    return arcs.empty();
  }
  const double front = sorted_dirs.front();
  std::size_t idx = 0;
  for (const geom::Arc& arc : arcs) {
    while (idx < sorted_dirs.size() && sorted_dirs[idx] < arc.start) {
      ++idx;
    }
    const bool hit = (idx < sorted_dirs.size() &&
                      ccw_from_normalized(arc.start, sorted_dirs[idx]) <= arc.width) ||
                     ccw_from_normalized(arc.start, front) <= arc.width;
    if (!hit) {
      return false;
    }
  }
  return true;
}

/// Largest circular gap of an already-sorted, normalized angle buffer.
/// Replicates `geom::max_circular_gap_info` (which normalizes — a no-op on
/// [0, 2*pi) inputs — sorts a copy, and scans) without the copy.
struct SortedGap {
  double width = geom::kTwoPi;
  double after = 0.0;
  bool has_after = false;
};

inline SortedGap max_gap_sorted(std::span<const double> sorted_dirs) {
  if (sorted_dirs.empty()) {
    return {};
  }
  SortedGap g;
  g.width = geom::kTwoPi - (sorted_dirs.back() - sorted_dirs.front());
  g.after = sorted_dirs.back();
  g.has_after = true;
  for (std::size_t i = 0; i + 1 < sorted_dirs.size(); ++i) {
    const double gap = sorted_dirs[i + 1] - sorted_dirs[i];
    if (gap > g.width) {
      g.width = gap;
      g.after = sorted_dirs[i];
    }
  }
  return g;
}

inline FullViewResult full_view_from_sorted(std::span<const double> sorted_dirs,
                                            double theta) {
  FullViewResult res;
  res.covering_count = sorted_dirs.size();
  const SortedGap gap = max_gap_sorted(sorted_dirs);
  res.max_gap = gap.width;
  res.covered = !sorted_dirs.empty() && gap.width <= 2.0 * theta;
  if (!res.covered) {
    if (gap.has_after) {
      res.witness_unsafe_direction = geom::normalize_angle(gap.after + 0.5 * gap.width);
    } else {
      res.witness_unsafe_direction = 0.0;
    }
  }
  return res;
}

}  // namespace

void GridEvalCounters::describe(obs::MetricsNode& node) const {
  node.add("points", static_cast<double>(points));
  node.add("candidates_total", static_cast<double>(candidates_total));
  node.add("directions_total", static_cast<double>(directions_total));
  node.add("trig_fallbacks", static_cast<double>(trig_fallbacks));
  node.add("slow_path_entries", static_cast<double>(slow_path_entries));
  node.histogram("candidates_per_point").merge(candidates_per_point);
}

GridEvalEngine::GridEvalEngine(const Network& net, const DenseGrid& grid, double theta)
    : net_(&net), grid_(grid), theta_(theta) {
  validate_theta(theta);
  implied_k_ = implied_k(theta);
  mode_ = net.mode();
  necessary_arcs_ = geom::sector_partition(2.0 * theta);
  sufficient_arcs_ = geom::sector_partition(theta);
  const std::uint64_t t0 = obs::monotonic_ns();
  bin_cameras();
  build_ns_ = obs::monotonic_ns() - t0;
}

GridEvalEngine::BinOccupancy GridEvalEngine::occupancy() const {
  BinOccupancy occ;
  occ.cells = cells_ * cells_;
  occ.entries = cell_entries_.size();
  for (std::size_t b = 0; b < occ.cells; ++b) {
    const std::size_t count = cell_offsets_[b + 1] - cell_offsets_[b];
    if (count == 0) {
      ++occ.empty_cells;
    }
    occ.max_per_cell = std::max(occ.max_per_cell, count);
  }
  occ.mean_per_cell =
      static_cast<double>(occ.entries) / static_cast<double>(occ.cells);
  return occ;
}

void GridEvalEngine::describe(obs::MetricsNode& node) const {
  const BinOccupancy occ = occupancy();
  node.set("cameras", static_cast<double>(net_->size()));
  node.set("grid_side", static_cast<double>(grid_.side()));
  node.set("cells_per_side", static_cast<double>(cells_));
  node.set("bin_cells", static_cast<double>(occ.cells));
  node.set("bin_entries", static_cast<double>(occ.entries));
  node.set("bin_empty_cells", static_cast<double>(occ.empty_cells));
  node.set("bin_max_per_cell", static_cast<double>(occ.max_per_cell));
  node.set("bin_mean_per_cell", occ.mean_per_cell);
  node.child("build").add_elapsed_ns(build_ns_);
}

void GridEvalEngine::bin_cameras() {
  const std::span<const Camera> cams = net_->cameras();
  if (cams.size() > static_cast<std::size_t>(~std::uint32_t{0})) {
    throw std::invalid_argument("GridEvalEngine: too many cameras");
  }
  // Cell sizing: correctness is set-based (every camera lands in every cell
  // it could cover a point of), so the cell count only trades binning cost
  // against candidate-list tightness.  Cells of about a third of the
  // sensing radius keep the per-point candidate list within ~1.5x of the
  // true in-radius count while the binned entry count stays ~n * pi * 9
  // regardless of radius; the cap bounds construction cost on tiny grids
  // and degenerate radii.
  const double r = std::max(net_->max_radius(), 1e-6);
  const auto target = static_cast<std::size_t>(std::ceil(3.0 / r));
  const std::size_t cap =
      std::min<std::size_t>(256, 4 * std::max<std::size_t>(1, grid_.side()));
  cells_ = std::clamp<std::size_t>(target, 1, cap);
  if (cams.empty()) {
    cells_ = 1;
  }
  const double h = 1.0 / static_cast<double>(cells_);
  const auto c = static_cast<std::ptrdiff_t>(cells_);

  // Enumerate, for each camera, the cells whose rectangle is within its
  // sensing radius.  Positions are pre-wrapped into [0,1) (torus) or lie in
  // [0,1] (plane), so the unwrapped window [pos - r, pos + r] is exact: on
  // the torus a cell at axis distance <= r < 1/2 appears in the window with
  // its short-way displacement, and windows spanning the whole circle are
  // clamped to one copy of each cell.
  struct Pair {
    std::uint32_t cell;
    std::uint32_t cam;
  };
  std::vector<Pair> pairs;
  pairs.reserve(cams.size() * 16);
  auto for_each_cell = [&](std::size_t i, const auto& emit) {
    const Camera& cam = cams[i];
    const double cr = cam.radius;
    // In plane mode there is no wraparound coverage, so the window is
    // clamped to the unit square; on the torus a window spanning the whole
    // axis is clamped to one copy of each cell.
    auto axis_range = [&](double pos, std::ptrdiff_t& lo, std::ptrdiff_t& span) {
      lo = static_cast<std::ptrdiff_t>(std::floor((pos - cr) / h));
      auto hi = static_cast<std::ptrdiff_t>(std::floor((pos + cr) / h));
      if (mode_ == geom::SpaceMode::kPlane) {
        lo = std::clamp<std::ptrdiff_t>(lo, 0, c - 1);
        hi = std::clamp<std::ptrdiff_t>(hi, 0, c - 1);
        span = hi - lo + 1;
      } else {
        span = std::min<std::ptrdiff_t>(hi - lo + 1, c);
      }
    };
    std::ptrdiff_t x_lo = 0, x_span = 0, y_lo = 0, y_span = 0;
    axis_range(cam.position.x, x_lo, x_span);
    axis_range(cam.position.y, y_lo, y_span);
    // The exact rectangle-distance prune is valid whenever the unwrapped
    // cell coordinates are the short-way displacement: always in plane
    // mode, and on the torus when neither axis window wraps fully.
    const bool prune = mode_ == geom::SpaceMode::kPlane || (x_span < c && y_span < c);
    const double r2 = cr * cr;
    for (std::ptrdiff_t ix = 0; ix < x_span; ++ix) {
      const std::ptrdiff_t cx = x_lo + ix;
      const double cell_x_lo = static_cast<double>(cx) * h;
      const double dx = std::max({0.0, cell_x_lo - cam.position.x,
                                  cam.position.x - (cell_x_lo + h)});
      for (std::ptrdiff_t iy = 0; iy < y_span; ++iy) {
        const std::ptrdiff_t cy = y_lo + iy;
        const double cell_y_lo = static_cast<double>(cy) * h;
        const double dy = std::max({0.0, cell_y_lo - cam.position.y,
                                    cam.position.y - (cell_y_lo + h)});
        if (prune && dx * dx + dy * dy > r2) {
          continue;
        }
        const std::size_t bx = static_cast<std::size_t>(((cx % c) + c) % c);
        const std::size_t by = static_cast<std::size_t>(((cy % c) + c) % c);
        emit(bx * cells_ + by);
      }
    }
  };

  for (std::size_t i = 0; i < cams.size(); ++i) {
    for_each_cell(i, [&](std::size_t bucket) {
      pairs.push_back({static_cast<std::uint32_t>(bucket), static_cast<std::uint32_t>(i)});
    });
  }

  // Counting-sort the pairs into CSR layout.
  const std::size_t buckets = cells_ * cells_;
  cell_offsets_.assign(buckets + 1, 0);
  for (const Pair& p : pairs) {
    ++cell_offsets_[p.cell + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    cell_offsets_[b + 1] += cell_offsets_[b];
  }
  cell_entries_.resize(pairs.size());
  std::vector<std::uint32_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (const Pair& p : pairs) {
    cell_entries_[cursor[p.cell]++] = p.cam;
  }

  // Precompute one fused-kernel record per entry.  The torus unwrap shift
  // k must satisfy round(fl(p - s)) == k for EVERY grid point p of the
  // cell, so that `(p - s) - k` (exact: |fl(p-s) - k| <= 1/2 is within the
  // Sterbenz range for k = +-1) followed by wrap_delta's two boundary
  // fixups reproduces `geom::wrap_delta(s, p)` bit-for-bit.  The 1e-9
  // margin absorbs the per-point rounding of fl(p - s); entries that
  // cannot satisfy it (cells near half-torus distance, or cells_ == 1)
  // fall back to the oracle displacement per point.
  cell_recs_.resize(cell_entries_.size());
  cell_flags_.resize(cell_entries_.size());
  // Trig is evaluated once per camera, not once per (cell, camera) entry —
  // a camera typically appears in tens of cells.
  std::vector<CandRec> cam_recs(cams.size());
  std::vector<std::uint8_t> cam_flags(cams.size());
  for (std::size_t i = 0; i < cams.size(); ++i) {
    const Camera& cam = cams[i];
    CandRec& rec = cam_recs[i];
    rec.sx = cam.position.x;
    rec.sy = cam.position.y;
    rec.r2 = cam.radius * cam.radius;
    rec.cu = std::cos(cam.orientation);
    rec.su = std::sin(cam.orientation);
    const double chs = std::cos(0.5 * cam.fov);
    rec.q = chs * std::abs(chs);
    cam_flags[i] = (0.5 * cam.fov >= geom::kPi) ? kOmni : std::uint8_t{0};
  }
  const bool plane = mode_ == geom::SpaceMode::kPlane;
  auto axis_shift = [&](double cell_lo, double s, double& k_out) -> bool {
    if (plane) {
      k_out = 0.0;  // plane displacement is the plain subtraction
      return true;
    }
    const double dlo = cell_lo - s;
    const double dhi = (cell_lo + h) - s;
    const double k = std::round(0.5 * (dlo + dhi));
    if (dlo <= k - 0.5 + 1e-9 || dhi >= k + 0.5 - 1e-9) {
      return false;
    }
    k_out = k;
    return true;
  };
  for (std::size_t b = 0; b < buckets; ++b) {
    const double cell_x_lo = static_cast<double>(b / cells_) * h;
    const double cell_y_lo = static_cast<double>(b % cells_) * h;
    for (std::uint32_t e = cell_offsets_[b]; e < cell_offsets_[b + 1]; ++e) {
      const std::uint32_t cam = cell_entries_[e];
      CandRec& rec = cell_recs_[e];
      rec = cam_recs[cam];
      std::uint8_t flags = cam_flags[cam];
      if (axis_shift(cell_x_lo, rec.sx, rec.kx) &&
          axis_shift(cell_y_lo, rec.sy, rec.ky)) {
        flags |= kFastDisp;
      }
      cell_flags_[e] = flags;
    }
  }
}

std::span<const std::uint32_t> GridEvalEngine::cell_candidates(std::size_t cx,
                                                               std::size_t cy) const {
  const std::size_t b = cx * cells_ + cy;
  return {cell_entries_.data() + cell_offsets_[b],
          cell_offsets_[b + 1] - cell_offsets_[b]};
}

std::size_t GridEvalEngine::point_cell(const geom::Vec2& p) const {
  const auto c = static_cast<double>(cells_);
  const auto cx = std::min<std::size_t>(static_cast<std::size_t>(std::max(p.x, 0.0) * c),
                                        cells_ - 1);
  const auto cy = std::min<std::size_t>(static_cast<std::size_t>(std::max(p.y, 0.0) * c),
                                        cells_ - 1);
  return cx * cells_ + cy;
}

std::span<const std::uint32_t> GridEvalEngine::candidates(const geom::Vec2& p) const {
  const std::size_t b = point_cell(p);
  return {cell_entries_.data() + cell_offsets_[b],
          cell_offsets_[b + 1] - cell_offsets_[b]};
}

void GridEvalEngine::gather_directions(const geom::Vec2& p, GridEvalScratch& scratch) const {
  std::vector<double>& out = scratch.angles;
  // The fused kernel.  Per candidate entry: displacement via the
  // precomputed unwrap shift (bit-identical to geom::displacement, see
  // bin_cameras), radius test on the squared distance, then the trig-free
  // field-of-view classifier — the real-math condition
  //     angular_distance(angle(d), orientation) <= fov/2
  //       <=>  dot(d, u) >= |d| * cos(fov/2)        (u = unit orientation)
  //       <=>  dot*|dot| >= q * |d|^2               (x*|x| is monotone)
  // decided outside a 1e-9 relative band around the threshold; inside the
  // band (or when the cell-wide shift is invalid) the scalar oracle's exact
  // arithmetic is used, so the covered SET always matches `covers`.
  // atan2 runs only for cameras that actually cover the point, and the
  // oracle's `normalize_angle(dir_sp + pi)` reduces to a branch because
  // fmod is the identity on [0, 2*pi).
  const std::size_t b = point_cell(p);
  const std::span<const Camera> cams = net_->cameras();
  const bool torus = mode_ == geom::SpaceMode::kTorus;
  const std::uint32_t lo = cell_offsets_[b];
  const std::uint32_t hi = cell_offsets_[b + 1];
  // Metrics are per point (one pointer test), never per candidate; the
  // rare-branch counters below sit inside already-[[unlikely]] blocks.
  GridEvalCounters* const ctr = scratch.counters;
  const std::size_t out_before = out.size();
  if (ctr != nullptr) [[unlikely]] {
    ++ctr->points;
    ctr->candidates_total += hi - lo;
    ctr->candidates_per_point.add(hi - lo);
  }
  // Classify loop: branchless bitwise predicate plus a branchless
  // compaction of the covered displacements, so the only data-dependent
  // branches left are the two [[unlikely]] fallbacks.  atan2 (the single
  // most expensive operation) runs in its own tight loop over the ~covered
  // survivors instead of stalling the classify pipeline.
  std::vector<double>& xs = scratch.dxs;
  std::vector<double>& ys = scratch.dys;
  if (xs.size() < hi - lo) {
    xs.resize(hi - lo);
    ys.resize(hi - lo);
  }
  std::size_t m = 0;
  for (std::uint32_t e = lo; e < hi; ++e) {
    const CandRec& rec = cell_recs_[e];
    const std::uint8_t flags = cell_flags_[e];
    if (!(flags & kFastDisp)) [[unlikely]] {
      if (ctr != nullptr) {
        ++ctr->slow_path_entries;
      }
      if (const auto dir = viewed_direction_if_covered(cams[cell_entries_[e]], p, mode_)) {
        out.push_back(*dir);
      }
      continue;
    }
    double dx = p.x - rec.sx;
    double dy = p.y - rec.sy;
    if (torus) {
      dx -= rec.kx;
      if (dx >= 0.5) {
        dx -= 1.0;
      }
      if (dx < -0.5) {
        dx += 1.0;
      }
      dy -= rec.ky;
      if (dy >= 0.5) {
        dy -= 1.0;
      }
      if (dy < -0.5) {
        dy += 1.0;
      }
    }
    const double n2 = dx * dx + dy * dy;
    const double dot = dx * rec.cu + dy * rec.su;
    const double lhs = dot * std::abs(dot);
    const double rhs = rec.q * n2;
    const double band = 1e-9 * n2;
    const bool in_radius = n2 <= rec.r2;
    const bool omni = (flags & kOmni) != 0;
    bool covered = in_radius & (omni | (lhs - rhs > band));
    if (in_radius & !omni & (std::abs(lhs - rhs) <= band)) [[unlikely]] {
      if (ctr != nullptr) {
        ++ctr->trig_fallbacks;
      }
      if (n2 == 0.0) {
        out.push_back(0.0);  // point coincides with the camera
        continue;
      }
      const Camera& cam = cams[cell_entries_[e]];
      covered =
          geom::angular_distance(std::atan2(dy, dx), cam.orientation) <= 0.5 * cam.fov;
    }
    if (covered & (n2 == 0.0)) [[unlikely]] {  // omni camera at the point
      out.push_back(0.0);
      continue;
    }
    xs[m] = dx;
    ys[m] = dy;
    m += static_cast<std::size_t>(covered);
  }
  for (std::size_t j = 0; j < m; ++j) {
    const double v = std::atan2(ys[j], xs[j]) + geom::kPi;
    out.push_back(v >= geom::kTwoPi ? 0.0 : v);
  }
  if (ctr != nullptr) [[unlikely]] {
    ctr->directions_total += out.size() - out_before;
  }
}

std::size_t GridEvalEngine::covered_count_at_least(const geom::Vec2& p,
                                                   std::size_t k) const {
  // Coverage-count variant of gather_directions: same covered set, no
  // atan2 on the fast path, early exit at k.
  const std::size_t b = point_cell(p);
  const std::span<const Camera> cams = net_->cameras();
  const bool torus = mode_ == geom::SpaceMode::kTorus;
  std::size_t count = 0;
  for (std::uint32_t e = cell_offsets_[b]; e < cell_offsets_[b + 1] && count < k; ++e) {
    const CandRec& rec = cell_recs_[e];
    const std::uint8_t flags = cell_flags_[e];
    if (!(flags & kFastDisp)) {
      if (covers(cams[cell_entries_[e]], p, mode_)) {
        ++count;
      }
      continue;
    }
    double dx = p.x - rec.sx;
    double dy = p.y - rec.sy;
    if (torus) {
      dx -= rec.kx;
      if (dx >= 0.5) {
        dx -= 1.0;
      }
      if (dx < -0.5) {
        dx += 1.0;
      }
      dy -= rec.ky;
      if (dy >= 0.5) {
        dy -= 1.0;
      }
      if (dy < -0.5) {
        dy += 1.0;
      }
    }
    const double n2 = dx * dx + dy * dy;
    const double dot = dx * rec.cu + dy * rec.su;
    const double lhs = dot * std::abs(dot);
    const double rhs = rec.q * n2;
    const double band = 1e-9 * n2;
    const bool in_radius = n2 <= rec.r2;
    const bool omni = (flags & kOmni) != 0;
    bool covered = in_radius & (omni | (lhs - rhs > band));
    if (in_radius & !omni & (std::abs(lhs - rhs) <= band)) [[unlikely]] {
      if (n2 == 0.0) {
        ++count;  // point coincides with the camera: always covered
        continue;
      }
      const Camera& cam = cams[cell_entries_[e]];
      covered =
          geom::angular_distance(std::atan2(dy, dx), cam.orientation) <= 0.5 * cam.fov;
    }
    count += static_cast<std::size_t>(covered);
  }
  return count;
}

std::span<const double> GridEvalEngine::sorted_directions(std::size_t row,
                                                          std::size_t col,
                                                          GridEvalScratch& scratch) const {
  std::vector<double>& a = scratch.angles;
  a.clear();
  gather_directions(grid_.point(row, col), scratch);
  // Direction buffers are small (the point's covering-camera count), so
  // insertion sort beats std::sort's dispatch; the sorted sequence is the
  // same for any comparison sort (the values are NaN-free doubles).
  if (a.size() <= 48) {
    for (std::size_t i = 1; i < a.size(); ++i) {
      const double v = a[i];
      std::size_t j = i;
      for (; j > 0 && a[j - 1] > v; --j) {
        a[j] = a[j - 1];
      }
      a[j] = v;
    }
  } else {
    std::sort(a.begin(), a.end());
  }
  return a;
}

FullViewResult GridEvalEngine::point_full_view(std::size_t row, std::size_t col,
                                               GridEvalScratch& scratch) const {
  return full_view_from_sorted(sorted_directions(row, col, scratch), theta_);
}

bool GridEvalEngine::point_necessary(std::size_t row, std::size_t col,
                                     GridEvalScratch& scratch) const {
  return arcs_all_hit(sorted_directions(row, col, scratch), necessary_arcs_);
}

bool GridEvalEngine::point_sufficient(std::size_t row, std::size_t col,
                                      GridEvalScratch& scratch) const {
  return arcs_all_hit(sorted_directions(row, col, scratch), sufficient_arcs_);
}

GridRowStats GridEvalEngine::row_stats(std::size_t row, GridEvalScratch& scratch) const {
  GridRowStats rs;
  bool first = true;
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (!dirs.empty()) {
      ++rs.covered_1;
    }
    if (dirs.size() >= implied_k_) {
      ++rs.k_covered_ok;
    }
    const SortedGap gap = max_gap_sorted(dirs);
    if (!dirs.empty() && gap.width <= 2.0 * theta_) {
      ++rs.full_view_ok;
    }
    if (arcs_all_hit(dirs, necessary_arcs_)) {
      ++rs.necessary_ok;
    }
    if (arcs_all_hit(dirs, sufficient_arcs_)) {
      ++rs.sufficient_ok;
    }
    if (first) {
      rs.min_max_gap = rs.max_max_gap = gap.width;
      first = false;
    } else {
      rs.min_max_gap = std::min(rs.min_max_gap, gap.width);
      rs.max_max_gap = std::max(rs.max_max_gap, gap.width);
    }
  }
  return rs;
}

RegionCoverageStats GridEvalEngine::evaluate(GridEvalScratch& scratch) const {
  RegionCoverageStats stats;
  stats.total_points = grid_.size();
  for (std::size_t row = 0; row < rows(); ++row) {
    const GridRowStats rs = row_stats(row, scratch);
    stats.covered_1 += rs.covered_1;
    stats.necessary_ok += rs.necessary_ok;
    stats.full_view_ok += rs.full_view_ok;
    stats.sufficient_ok += rs.sufficient_ok;
    stats.k_covered_ok += rs.k_covered_ok;
    if (row == 0) {
      stats.min_max_gap = rs.min_max_gap;
      stats.max_max_gap = rs.max_max_gap;
    } else {
      stats.min_max_gap = std::min(stats.min_max_gap, rs.min_max_gap);
      stats.max_max_gap = std::max(stats.max_max_gap, rs.max_max_gap);
    }
  }
  return stats;
}

GridRowEvents GridEvalEngine::row_events(std::size_t row, GridEvalScratch& scratch,
                                         bool need_full_view,
                                         bool need_sufficient) const {
  GridRowEvents ev;
  ev.all_full_view = need_full_view;
  ev.all_sufficient = need_sufficient;
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (!arcs_all_hit(dirs, necessary_arcs_)) {
      return {false, false, false};
    }
    if (ev.all_full_view) {
      const SortedGap gap = max_gap_sorted(dirs);
      if (dirs.empty() || gap.width > 2.0 * theta_) {
        ev.all_full_view = false;
        ev.all_sufficient = false;  // sufficient implies full view
      }
    }
    if (ev.all_sufficient && !arcs_all_hit(dirs, sufficient_arcs_)) {
      ev.all_sufficient = false;
    }
  }
  return ev;
}

bool GridEvalEngine::row_all_necessary(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    if (!arcs_all_hit(sorted_directions(row, col, scratch), necessary_arcs_)) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_sufficient(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    if (!arcs_all_hit(sorted_directions(row, col, scratch), sufficient_arcs_)) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_full_view(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (dirs.empty() || max_gap_sorted(dirs).width > 2.0 * theta_) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_k_covered(std::size_t row, std::size_t k,
                                       GridEvalScratch& scratch) const {
  (void)scratch;
  if (k == 0) {
    return true;
  }
  for (std::size_t col = 0; col < cols(); ++col) {
    const geom::Vec2 p = grid_.point(row, col);
    if (covered_count_at_least(p, k) < k) {
      return false;
    }
  }
  return true;
}

}  // namespace fvc::core
