#include "fvc/core/grid_eval.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "fvc/core/grid_eval_kernel.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/sector.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/obs/trace.hpp"

namespace fvc::core {

namespace {

/// Absolute ceiling on index cells per side: keeps the fine-cell bucket
/// key (cells^2) within the 32-bit counting-sort keys.  Far above any
/// radius the sizing rule meets in practice (it binds only below
/// max_radius ~ 5e-5); the per-grid 4 * side cap binds first on real
/// configurations.
constexpr std::size_t kAbsoluteMaxCells = 65535;

/// Unique id per engine instance; keys the per-scratch stream row slices
/// so a scratch can be handed from one engine to another (rebuilds, trial
/// loops) without serving a stale slice.  Starts at 1: a default
/// RowSlice's generation 0 never matches.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Vectorized classify entry point for a dispatched variant; nullptr for
/// the scalar variant (and, defensively, for variants this build lacks —
/// resolve_kernel already rejects those).
detail::ClassifyFn classify_for(KernelVariant v) {
  switch (v) {
    case KernelVariant::kGeneric:
      return &detail::classify_generic;
#if defined(FVC_KERNEL_AVX2)
    case KernelVariant::kAvx2:
      return &detail::classify_avx2;
#endif
#if defined(FVC_KERNEL_NEON)
    case KernelVariant::kNeon:
      return &detail::classify_neon;
#endif
    default:
      return nullptr;
  }
}

/// ccw_delta for inputs already normalized to [0, 2*pi).  Bit-identical to
/// `geom::ccw_delta(from, to)` on that domain: there, fmod is the identity
/// (|to - from| < 2*pi), so the only operations are the subtraction, the
/// conditional + 2*pi, and the wrap-to-zero guard — replicated here without
/// the fmod call.  tests/core/test_grid_eval.cpp checks the equivalence.
inline double ccw_from_normalized(double from, double to) {
  double d = to - from;
  if (d < 0.0) {
    d += geom::kTwoPi;
  }
  if (d >= geom::kTwoPi) {
    d = 0.0;
  }
  return d;
}

/// `sectors_all_hit` of the scalar oracle, over precomputed arcs and the
/// sorted angle buffer.  Arc containment is closed on both endpoints, as in
/// `geom::angle_in_arc` (width is clamped to [0, 2*pi] by construction, so
/// the oracle's width >= 2*pi fast path coincides with the comparison).
/// Exactness of the two-candidate test: split the directions at the arc
/// start s.  For d >= s the predicate value is fl(d - s), monotone in d, so
/// if any such d hits then the FIRST d >= s hits; for d < s it is
/// fl(fl(d - s) + 2*pi), also monotone, so if any such d hits then the
/// smallest direction hits.  Testing those two candidates with the exact
/// predicate therefore decides existence.  Partition arcs have ascending
/// starts, so the first-candidate cursor advances monotonically and the
/// whole check is one merged sweep.
inline bool arcs_all_hit(std::span<const double> sorted_dirs,
                         std::span<const geom::Arc> arcs) {
  if (sorted_dirs.empty()) {
    return arcs.empty();
  }
  const double front = sorted_dirs.front();
  std::size_t idx = 0;
  for (const geom::Arc& arc : arcs) {
    while (idx < sorted_dirs.size() && sorted_dirs[idx] < arc.start) {
      ++idx;
    }
    const bool hit = (idx < sorted_dirs.size() &&
                      ccw_from_normalized(arc.start, sorted_dirs[idx]) <= arc.width) ||
                     ccw_from_normalized(arc.start, front) <= arc.width;
    if (!hit) {
      return false;
    }
  }
  return true;
}

/// Largest circular gap of an already-sorted, normalized angle buffer.
/// Replicates `geom::max_circular_gap_info` (which normalizes — a no-op on
/// [0, 2*pi) inputs — sorts a copy, and scans) without the copy.
struct SortedGap {
  double width = geom::kTwoPi;
  double after = 0.0;
  bool has_after = false;
};

inline SortedGap max_gap_sorted(std::span<const double> sorted_dirs) {
  if (sorted_dirs.empty()) {
    return {};
  }
  SortedGap g;
  g.width = geom::kTwoPi - (sorted_dirs.back() - sorted_dirs.front());
  g.after = sorted_dirs.back();
  g.has_after = true;
  for (std::size_t i = 0; i + 1 < sorted_dirs.size(); ++i) {
    const double gap = sorted_dirs[i + 1] - sorted_dirs[i];
    if (gap > g.width) {
      g.width = gap;
      g.after = sorted_dirs[i];
    }
  }
  return g;
}

inline FullViewResult full_view_from_sorted(std::span<const double> sorted_dirs,
                                            double theta) {
  FullViewResult res;
  res.covering_count = sorted_dirs.size();
  const SortedGap gap = max_gap_sorted(sorted_dirs);
  res.max_gap = gap.width;
  res.covered = !sorted_dirs.empty() && gap.width <= 2.0 * theta;
  if (!res.covered) {
    if (gap.has_after) {
      res.witness_unsafe_direction = geom::normalize_angle(gap.after + 0.5 * gap.width);
    } else {
      res.witness_unsafe_direction = 0.0;
    }
  }
  return res;
}

}  // namespace

void GridEvalCounters::describe(obs::MetricsNode& node) const {
  node.add("points", static_cast<double>(points));
  node.add("candidates_total", static_cast<double>(candidates_total));
  node.add("directions_total", static_cast<double>(directions_total));
  node.add("trig_fallbacks", static_cast<double>(trig_fallbacks));
  node.histogram("candidates_per_point").merge(candidates_per_point);
}

GridEvalEngine::GridEvalEngine(const Network& net, const DenseGrid& grid, double theta)
    : net_(&net), grid_(grid), theta_(theta) {
  validate_theta(theta);
  implied_k_ = implied_k(theta);
  mode_ = net.mode();
  kernel_ = resolve_kernel();
  classify_ = classify_for(kernel_);
  note_kernel_dispatch(kernel_);
  index_ = resolve_index();
  note_index_dispatch(index_);
  generation_ = next_generation();
  necessary_arcs_ = geom::sector_partition(2.0 * theta);
  sufficient_arcs_ = geom::sector_partition(theta);
  const obs::TraceScope scope("engine.build", obs::TraceCategory::kEngine,
                              "cameras", net.size());
  const std::uint64_t t0 = obs::monotonic_ns();
  compute_cells();
  switch (index_) {
    case IndexVariant::kFlat:
      build_flat();
      break;
    case IndexVariant::kHier:
      build_hier();
      break;
    case IndexVariant::kStream:
      build_stream();
      break;
  }
  build_ns_ = obs::monotonic_ns() - t0;
}

void GridEvalEngine::CandSoA::resize(std::size_t n) {
  stride = n;
  data.resize(7 * n);
}

GridEvalEngine::BinOccupancy GridEvalEngine::occupancy() const {
  BinOccupancy occ;
  auto tally = [&occ](std::size_t count) {
    if (count == 0) {
      ++occ.empty_cells;
    }
    occ.max_per_cell = std::max(occ.max_per_cell, count);
  };
  switch (index_) {
    case IndexVariant::kFlat: {
      occ.cells = cells_ * cells_;
      occ.entries = cell_entries_.size();
      for (std::size_t b = 0; b < occ.cells; ++b) {
        tally(cell_offsets_[b + 1] - cell_offsets_[b]);
      }
      break;
    }
    case IndexVariant::kHier: {
      // Bins are the index's leaves: whole tiles where unsubdivided, the
      // tile-local fine cells where subdivided.
      occ.entries = cell_entries_.size();
      constexpr std::size_t kLocals = kHierSubdiv * kHierSubdiv;
      for (std::size_t t = 0; t < tiles_ * tiles_; ++t) {
        if (tile_slot_[t] == 0) {
          ++occ.cells;
          tally(tile_offsets_[t + 1] - tile_offsets_[t]);
        } else {
          occ.cells += kLocals;
          const std::uint32_t* fo =
              fine_offsets_.data() + (tile_slot_[t] - 1) * (kLocals + 1);
          for (std::size_t i = 0; i < kLocals; ++i) {
            tally(fo[i + 1] - fo[i]);
          }
        }
      }
      break;
    }
    case IndexVariant::kStream: {
      // Bins are the y strips: the build-time structure (row slices are
      // per-scratch and transient).
      occ.cells = cells_;
      occ.entries = strip_entries_.size();
      for (std::size_t s = 0; s < cells_; ++s) {
        tally(strip_offsets_[s + 1] - strip_offsets_[s]);
      }
      break;
    }
  }
  occ.mean_per_cell = occ.cells == 0
                          ? 0.0
                          : static_cast<double>(occ.entries) /
                                static_cast<double>(occ.cells);
  return occ;
}

std::size_t GridEvalEngine::index_bytes() const {
  const std::size_t u32 = sizeof(std::uint32_t);
  return cell_offsets_.size() * u32 + cell_entries_.size() * u32 +
         soa_.data.size() * sizeof(double) + tile_offsets_.size() * u32 +
         tile_slot_.size() * u32 + fine_offsets_.size() * u32 +
         strip_offsets_.size() * u32 + strip_entries_.size() * u32 +
         cam_soa_.data.size() * sizeof(double);
}

void GridEvalEngine::describe(obs::MetricsNode& node) const {
  const BinOccupancy occ = occupancy();
  node.set("cameras", static_cast<double>(net_->size()));
  node.set("grid_side", static_cast<double>(grid_.side()));
  node.set("cells_per_side", static_cast<double>(cells_));
  node.set("cells_target", static_cast<double>(cells_target_));
  node.set("cells_clamped", cells_clamped_ ? 1.0 : 0.0);
  node.set("index_bytes", static_cast<double>(index_bytes()));
  node.set("bin_cells", static_cast<double>(occ.cells));
  node.set("bin_entries", static_cast<double>(occ.entries));
  node.set("bin_empty_cells", static_cast<double>(occ.empty_cells));
  node.set("bin_max_per_cell", static_cast<double>(occ.max_per_cell));
  node.set("bin_mean_per_cell", occ.mean_per_cell);
  // The engine's own span covers construction; evaluation time is merged
  // in by the caller (it is per scratch, not per engine).
  node.add_elapsed_ns(build_ns_);
  node.child("build").add_elapsed_ns(build_ns_);
  describe_kernel_dispatch(kernel_, node);
  describe_index_dispatch(index_, node);
}

void describe_kernel_dispatch(KernelVariant active, obs::MetricsNode& node) {
  node.set("kernel_lanes", static_cast<double>(kernel_lanes(active)));
  node.set(std::string("kernel_") += kernel_name(active), 1.0);
  obs::MetricsNode& disp = node.child("kernel_dispatch");
  for (std::size_t i = 0; i < kKernelVariantCount; ++i) {
    const auto v = static_cast<KernelVariant>(i);
    disp.set(std::string("engines_") += kernel_name(v),
             static_cast<double>(kernel_dispatch_count(v)));
  }
}

void describe_index_dispatch(IndexVariant active, obs::MetricsNode& node) {
  node.set(std::string("index_") += index_name(active), 1.0);
  obs::MetricsNode& disp = node.child("index_dispatch");
  for (std::size_t i = 0; i < kIndexVariantCount; ++i) {
    const auto v = static_cast<IndexVariant>(i);
    disp.set(std::string("engines_") += index_name(v),
             static_cast<double>(index_dispatch_count(v)));
  }
}

void GridEvalEngine::compute_cells() {
  if (net_->cameras().size() > static_cast<std::size_t>(~std::uint32_t{0})) {
    throw std::invalid_argument("GridEvalEngine: too many cameras");
  }
  // Cell sizing: correctness is set-based (every index answer is a superset
  // of the covering cameras), so the cell count only trades build cost
  // against candidate-list tightness.  Cells of about a third of the
  // sensing radius keep the per-point candidate list within ~1.5x of the
  // true in-radius count; the caps bound construction cost on tiny grids
  // and degenerate radii.  FVC_INDEX_CELL_CAP is a diagnostic override
  // (benchmarks use it to reproduce the historical 256-cell clamp).
  const double r = std::max(net_->max_radius(), kMinSizingRadius);
  cells_target_ = static_cast<std::size_t>(std::ceil(kCellsPerRadius / r));
  std::size_t cap = std::min<std::size_t>(
      kAbsoluteMaxCells, 4 * std::max<std::size_t>(1, grid_.side()));
  if (const char* env = std::getenv("FVC_INDEX_CELL_CAP");
      env != nullptr && env[0] != '\0') {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) {
      cap = std::min<std::size_t>(cap, v);
    }
  }
  cells_ = std::clamp<std::size_t>(cells_target_, 1, cap);
  if (net_->cameras().empty()) {
    cells_ = 1;
  }
  cells_clamped_ = cells_ < cells_target_;
}

void GridEvalEngine::enumerate_cell_pairs(std::vector<CellPair>& pairs) const {
  const std::span<const Camera> cams = net_->cameras();
  const double h = 1.0 / static_cast<double>(cells_);
  const auto c = static_cast<std::ptrdiff_t>(cells_);

  // Enumerate, for each camera, the cells whose rectangle is within its
  // sensing radius.  Positions are pre-wrapped into [0,1) (torus) or lie in
  // [0,1] (plane), so the unwrapped window [pos - r, pos + r] is exact: on
  // the torus a cell at axis distance <= r < 1/2 appears in the window with
  // its short-way displacement, and windows spanning the whole circle are
  // clamped to one copy of each cell.
  pairs.clear();
  // Reserve the worst-case window area so the push_back loop never
  // reallocates (regrowth copies megabytes mid-enumeration).
  const double rmax = std::max(net_->max_radius(), kMinSizingRadius);
  const auto span_bound = std::min<std::size_t>(
      cells_,
      static_cast<std::size_t>(2.0 * rmax * static_cast<double>(cells_)) + 2);
  pairs.reserve(cams.size() * span_bound * span_bound);
  // Everything that depends on one axis only — wrapped index, squared
  // rectangle distance — is hoisted out of the column x row product (the
  // per-cell modulo by a runtime divisor otherwise dominates enumeration).
  // Heap scratch sized to the actual resolution: the sizing rule is no
  // longer clamped to a fixed array bound (y_span <= c <= cells_).
  std::vector<std::uint32_t> by_arr(cells_);
  std::vector<double> dy2_arr(cells_);
  auto for_each_cell = [&](std::size_t i, const auto& emit) {
    const Camera& cam = cams[i];
    const double cr = cam.radius;
    // In plane mode there is no wraparound coverage, so the window is
    // clamped to the unit square; on the torus a window spanning the whole
    // axis is clamped to one copy of each cell.
    auto axis_range = [&](double pos, std::ptrdiff_t& lo, std::ptrdiff_t& span) {
      lo = static_cast<std::ptrdiff_t>(std::floor((pos - cr) / h));
      auto hi = static_cast<std::ptrdiff_t>(std::floor((pos + cr) / h));
      if (mode_ == geom::SpaceMode::kPlane) {
        lo = std::clamp<std::ptrdiff_t>(lo, 0, c - 1);
        hi = std::clamp<std::ptrdiff_t>(hi, 0, c - 1);
        span = hi - lo + 1;
      } else {
        span = std::min<std::ptrdiff_t>(hi - lo + 1, c);
      }
    };
    std::ptrdiff_t x_lo = 0, x_span = 0, y_lo = 0, y_span = 0;
    axis_range(cam.position.x, x_lo, x_span);
    axis_range(cam.position.y, y_lo, y_span);
    // The exact rectangle-distance prune is valid whenever the unwrapped
    // cell coordinates are the short-way displacement: always in plane
    // mode, and on the torus when neither axis window wraps fully.
    const bool prune = mode_ == geom::SpaceMode::kPlane || (x_span < c && y_span < c);
    const double r2 = cr * cr;
    for (std::ptrdiff_t iy = 0; iy < y_span; ++iy) {
      const std::ptrdiff_t cy = y_lo + iy;
      const double cell_y_lo = static_cast<double>(cy) * h;
      const double dy = std::max({0.0, cell_y_lo - cam.position.y,
                                  cam.position.y - (cell_y_lo + h)});
      dy2_arr[static_cast<std::size_t>(iy)] = dy * dy;
      by_arr[static_cast<std::size_t>(iy)] =
          static_cast<std::uint32_t>(((cy % c) + c) % c);
    }
    for (std::ptrdiff_t ix = 0; ix < x_span; ++ix) {
      const std::ptrdiff_t cx = x_lo + ix;
      const double cell_x_lo = static_cast<double>(cx) * h;
      const double dx = std::max({0.0, cell_x_lo - cam.position.x,
                                  cam.position.x - (cell_x_lo + h)});
      const double dx2 = dx * dx;
      const std::size_t bx = static_cast<std::size_t>(((cx % c) + c) % c);
      const std::size_t row_base = bx * cells_;
      for (std::ptrdiff_t iy = 0; iy < y_span; ++iy) {
        if (prune && dx2 + dy2_arr[static_cast<std::size_t>(iy)] > r2) {
          continue;
        }
        emit(row_base + by_arr[static_cast<std::size_t>(iy)]);
      }
    }
  };

  for (std::size_t i = 0; i < cams.size(); ++i) {
    for_each_cell(i, [&](std::size_t bucket) {
      pairs.push_back(
          {static_cast<std::uint32_t>(bucket), static_cast<std::uint32_t>(i)});
    });
  }
  if (pairs.size() > static_cast<std::size_t>(~std::uint32_t{0})) {
    throw std::invalid_argument("GridEvalEngine: candidate index overflow");
  }
}

void GridEvalEngine::fill_soa(CandSoA& soa, std::span<const std::uint32_t> ids) const {
  const std::span<const Camera> cams = net_->cameras();
  // Precompute one fused-kernel record per camera, not per entry — a
  // camera typically appears in tens of cells, and the trig calls dominate
  // the record.
  struct CamRec {
    double sx, sy, r2, cu, su, q, omni;
  };
  // The omni marker is an all-bits-set double so the lane kernel can OR it
  // straight into its comparison masks; it is never used arithmetically.
  const double omni_mask = std::bit_cast<double>(~std::uint64_t{0});
  std::vector<CamRec> cam_recs(cams.size());
  for (std::size_t i = 0; i < cams.size(); ++i) {
    const Camera& cam = cams[i];
    CamRec& rec = cam_recs[i];
    rec.sx = cam.position.x;
    rec.sy = cam.position.y;
    rec.r2 = cam.radius * cam.radius;
    rec.cu = std::cos(cam.orientation);
    rec.su = std::sin(cam.orientation);
    const double chs = std::cos(0.5 * cam.fov);
    rec.q = chs * std::abs(chs);
    rec.omni = 0.5 * cam.fov >= geom::kPi ? omni_mask : 0.0;
  }
  // Sequential writes to seven streams beat one scatter of 56-byte records
  // by a wide margin.
  soa.resize(ids.size());
  double* const f_sx = soa.mut(0);
  double* const f_sy = soa.mut(1);
  double* const f_r2 = soa.mut(2);
  double* const f_cu = soa.mut(3);
  double* const f_su = soa.mut(4);
  double* const f_q = soa.mut(5);
  double* const f_om = soa.mut(6);
  for (std::size_t w = 0; w < ids.size(); ++w) {
    const CamRec& rec = cam_recs[ids[w]];
    f_sx[w] = rec.sx;
    f_sy[w] = rec.sy;
    f_r2[w] = rec.r2;
    f_cu[w] = rec.cu;
    f_su[w] = rec.su;
    f_q[w] = rec.q;
    f_om[w] = rec.omni;
  }
}

void GridEvalEngine::build_flat() {
  std::vector<CellPair> pairs;
  enumerate_cell_pairs(pairs);
  const std::size_t buckets = cells_ * cells_;
  // Counting-sort the pairs by cell so each cell's entries are one dense
  // range the vectorized kernel consumes in whole lane groups.  Only the
  // 4-byte camera ids are scattered; the SoA fields are then filled in a
  // separate sequential pass.
  cell_offsets_.assign(buckets + 1, 0);
  for (const CellPair& pr : pairs) {
    ++cell_offsets_[pr.key + 1];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    cell_offsets_[b + 1] += cell_offsets_[b];
  }
  cell_entries_.resize(pairs.size());
  std::vector<std::uint32_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (const CellPair& pr : pairs) {
    cell_entries_[cursor[pr.key]++] = pr.cam;
  }
  fill_soa(soa_, cell_entries_);
}

void GridEvalEngine::build_hier() {
  std::vector<CellPair> pairs;
  enumerate_cell_pairs(pairs);
  tiles_ = (cells_ + kHierSubdiv - 1) / kHierSubdiv;
  const std::size_t tcount = tiles_ * tiles_;
  constexpr std::size_t kLocals = kHierSubdiv * kHierSubdiv;
  // The fine-cell windows are the flat index's, but offsets exist only at
  // tile granularity plus a pooled (sub^2+1)-slot table per *subdivided*
  // tile — empty regions cost one offset per tile instead of kLocals, so
  // memory tracks the occupied area on clustered deployments.
  auto tile_of = [this](std::uint32_t key, std::size_t& local) {
    const std::size_t bx = key / cells_;
    const std::size_t by = key % cells_;
    local = (bx % kHierSubdiv) * kHierSubdiv + (by % kHierSubdiv);
    return (bx / kHierSubdiv) * tiles_ + (by / kHierSubdiv);
  };
  std::vector<std::uint32_t> raw_offsets(tcount + 1, 0);
  std::size_t scratch_local = 0;
  for (const CellPair& pr : pairs) {
    ++raw_offsets[tile_of(pr.key, scratch_local) + 1];
  }
  for (std::size_t t = 0; t < tcount; ++t) {
    raw_offsets[t + 1] += raw_offsets[t];
  }
  // Subdivide only tiles dense enough to repay 64 fine spans (measured on
  // the replicated pair count — the cost a whole-tile span would hand the
  // kernel).
  tile_slot_.assign(tcount, 0);
  std::uint32_t nsub = 0;
  for (std::size_t t = 0; t < tcount; ++t) {
    if (raw_offsets[t + 1] - raw_offsets[t] > kHierSubdivideThreshold) {
      tile_slot_[t] = ++nsub;
    }
  }
  // Scatter entries by tile, remembering each entry's tile-local cell.
  std::vector<std::uint32_t> raw_entries(pairs.size());
  std::vector<std::uint32_t> local(pairs.size());
  std::vector<std::uint32_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
  for (const CellPair& pr : pairs) {
    std::size_t li = 0;
    const std::size_t t = tile_of(pr.key, li);
    const std::uint32_t w = cursor[t]++;
    raw_entries[w] = pr.cam;
    local[w] = static_cast<std::uint32_t>(li);
  }
  // Compact per tile.  A subdivided tile keeps every (cell, camera) pair,
  // counting-sorted by local cell (stable, so within a fine cell entries
  // keep enumeration order like the flat index) with absolute pooled
  // offsets.  An unsubdivided tile's WHOLE span goes to the kernel, so a
  // camera overlapping several fine cells of the same tile must appear
  // once, not once per cell — its range is deduplicated by camera id
  // (candidate order is free: directions are sorted downstream).
  cell_entries_.clear();
  cell_entries_.reserve(pairs.size());
  tile_offsets_.assign(tcount + 1, 0);
  fine_offsets_.assign(static_cast<std::size_t>(nsub) * (kLocals + 1), 0);
  std::vector<std::uint32_t> tmp_ids;
  for (std::size_t t = 0; t < tcount; ++t) {
    const std::uint32_t lo = raw_offsets[t];
    const std::uint32_t hi = raw_offsets[t + 1];
    const auto base = static_cast<std::uint32_t>(cell_entries_.size());
    tile_offsets_[t] = base;
    if (tile_slot_[t] == 0) {
      tmp_ids.assign(raw_entries.begin() + lo, raw_entries.begin() + hi);
      std::sort(tmp_ids.begin(), tmp_ids.end());
      tmp_ids.erase(std::unique(tmp_ids.begin(), tmp_ids.end()), tmp_ids.end());
      cell_entries_.insert(cell_entries_.end(), tmp_ids.begin(), tmp_ids.end());
    } else {
      std::uint32_t* fo =
          fine_offsets_.data() + (tile_slot_[t] - 1) * (kLocals + 1);
      std::uint32_t counts[kLocals + 1] = {0};
      for (std::uint32_t w = lo; w < hi; ++w) {
        ++counts[local[w] + 1];
      }
      for (std::size_t i = 0; i < kLocals; ++i) {
        counts[i + 1] += counts[i];
      }
      for (std::size_t i = 0; i <= kLocals; ++i) {
        fo[i] = base + counts[i];
      }
      cell_entries_.resize(base + (hi - lo));
      for (std::uint32_t w = lo; w < hi; ++w) {
        cell_entries_[base + counts[local[w]]++] = raw_entries[w];
      }
    }
  }
  tile_offsets_[tcount] = static_cast<std::uint32_t>(cell_entries_.size());
  fill_soa(soa_, cell_entries_);
}

void GridEvalEngine::build_stream() {
  const std::span<const Camera> cams = net_->cameras();
  const std::size_t n = cams.size();
  max_r_ = net_->max_radius();
  const auto sd = static_cast<double>(cells_);
  // Cameras are binned ONCE by position — no replication, so the build is
  // O(n) and entry count equals the camera count.  Candidate windows are
  // materialised per grid row into the scratch's slice (build_row_slice).
  strip_offsets_.assign(cells_ + 1, 0);
  strip_entries_.resize(n);
  std::vector<std::uint32_t> strip(n);
  for (std::size_t i = 0; i < n; ++i) {
    strip[i] = static_cast<std::uint32_t>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(cams[i].position.y, 0.0) * sd),
        cells_ - 1));
    ++strip_offsets_[strip[i] + 1];
  }
  for (std::size_t s = 0; s < cells_; ++s) {
    strip_offsets_[s + 1] += strip_offsets_[s];
  }
  std::vector<std::uint32_t> cursor(strip_offsets_.begin(), strip_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    strip_entries_[cursor[strip[i]]++] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    identity[i] = static_cast<std::uint32_t>(i);
  }
  fill_soa(cam_soa_, identity);
  // Slice window geometry.  The per-point x window is the real interval
  // [px - R, px + R] padded by one cell per side; the pad (>= 1/cells_)
  // swallows every floor-rounding discrepancy between the kernel's wrapped
  // fl displacement and the real-valued window, so any camera the kernel
  // can accept lies inside the window.  On the torus, `ghost_` extra cell
  // columns per slice side hold a second image of near-seam cameras; a
  // window then never contains both images of one camera (they are exactly
  // cells_ ext-cells apart, and the window is at most 2*ghost_ + 1 <
  // cells_ cells wide) — unless the band is too wide, in which case
  // `stream_whole_` degrades every window to the whole slice (still
  // duplicate-free: one image per camera).
  ghost_ = static_cast<std::ptrdiff_t>(std::floor(max_r_ * sd)) + 2;
  stream_whole_ = 2.0 * max_r_ + 2.0 / sd >= 1.0 ||
                  static_cast<std::ptrdiff_t>(cells_) <= 2 * ghost_ + 2;
  if (mode_ == geom::SpaceMode::kPlane) {
    // No wraparound coverage: windows clamp to [0, cells_) instead.
    ghost_ = 0;
    stream_whole_ = false;
  }
}

void GridEvalEngine::build_row_slice(std::size_t row, GridEvalScratch& scratch) const {
  GridEvalScratch::RowSlice& sl = scratch.slice;
  const double py = grid_.point(row, 0).y;
  const auto s_count = static_cast<std::ptrdiff_t>(cells_);
  const auto sd = static_cast<double>(cells_);
  const bool torus = mode_ == geom::SpaceMode::kTorus;
  // 1. Walk the strips whose cameras could be within max_r_ of the row's y
  //    (padded one strip per side; the per-camera prune decides exactly).
  std::ptrdiff_t s_lo =
      static_cast<std::ptrdiff_t>(std::floor((py - max_r_) * sd)) - 1;
  std::ptrdiff_t s_hi =
      static_cast<std::ptrdiff_t>(std::floor((py + max_r_) * sd)) + 1;
  std::ptrdiff_t s_span;
  if (torus) {
    s_span = std::min(s_hi - s_lo + 1, s_count);
  } else {
    s_lo = std::clamp<std::ptrdiff_t>(s_lo, 0, s_count - 1);
    s_hi = std::clamp<std::ptrdiff_t>(s_hi, 0, s_count - 1);
    s_span = s_hi - s_lo + 1;
  }
  std::vector<std::uint32_t>& surv = sl.survivors;
  surv.clear();
  const double* const cam_sy = cam_soa_.sy();
  const double* const cam_r2 = cam_soa_.r2();
  for (std::ptrdiff_t is = 0; is < s_span; ++is) {
    const auto s =
        static_cast<std::size_t>((((s_lo + is) % s_count) + s_count) % s_count);
    const std::uint32_t lo = strip_offsets_[s];
    const std::uint32_t hi = strip_offsets_[s + 1];
    for (std::uint32_t e = lo; e < hi; ++e) {
      const std::uint32_t cam = strip_entries_[e];
      // Exact y prune, using the kernel's own displacement sequence: the
      // fused distance test satisfies fl(fl(dx^2) + fl(dy^2)) >= fl(dy^2)
      // (rounding is monotone, fl(dx^2) >= 0), so fl(dy^2) > r^2 implies
      // the kernel rejects this camera at every point of the row —
      // dropping it cannot change any covered set.
      double dy = py - cam_sy[cam];
      if (torus) {
        dy -= std::round(dy);
        if (dy >= 0.5) {
          dy -= 1.0;
        }
      }
      if (dy * dy > cam_r2[cam]) {
        continue;
      }
      surv.push_back(cam);
    }
  }
  // 2. Bucket survivors by extended x cell (main image + at most one ghost
  //    image per seam side) so every point window is one contiguous,
  //    duplicate-free range.
  const std::ptrdiff_t g = (torus && !stream_whole_) ? ghost_ : 0;
  const std::size_t ecells =
      stream_whole_ ? 1 : cells_ + static_cast<std::size_t>(2 * g);
  sl.offsets.assign(ecells + 1, 0);
  const double* const cam_sx = cam_soa_.sx();
  auto xcell_of = [&](std::uint32_t cam) {
    return static_cast<std::ptrdiff_t>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(cam_sx[cam], 0.0) * sd), cells_ - 1));
  };
  if (stream_whole_) {
    sl.offsets[1] = static_cast<std::uint32_t>(surv.size());
    sl.ids.assign(surv.begin(), surv.end());
  } else {
    for (const std::uint32_t cam : surv) {
      const std::ptrdiff_t cx = xcell_of(cam);
      ++sl.offsets[static_cast<std::size_t>(cx + g) + 1];
      if (g != 0 && cx < g) {
        ++sl.offsets[static_cast<std::size_t>(cx + g + s_count) + 1];
      }
      if (g != 0 && cx >= s_count - g) {
        ++sl.offsets[static_cast<std::size_t>(cx + g - s_count) + 1];
      }
    }
    for (std::size_t b = 0; b < ecells; ++b) {
      sl.offsets[b + 1] += sl.offsets[b];
    }
    sl.ids.resize(sl.offsets[ecells]);
    sl.cursors.assign(sl.offsets.begin(), sl.offsets.end() - 1);
    for (const std::uint32_t cam : surv) {
      const std::ptrdiff_t cx = xcell_of(cam);
      sl.ids[sl.cursors[static_cast<std::size_t>(cx + g)]++] = cam;
      if (g != 0 && cx < g) {
        sl.ids[sl.cursors[static_cast<std::size_t>(cx + g + s_count)]++] = cam;
      }
      if (g != 0 && cx >= s_count - g) {
        sl.ids[sl.cursors[static_cast<std::size_t>(cx + g - s_count)]++] = cam;
      }
    }
  }
  // 3. Gather the slice's compact SoA from the per-camera pool, field by
  //    field (sequential writes, one random-read stream per field).
  const std::size_t total = sl.ids.size();
  sl.stride = total;
  sl.soa.resize(7 * total);
  for (std::size_t f = 0; f < 7; ++f) {
    double* const dst = sl.soa.data() + f * total;
    const double* const src = cam_soa_.data.data() + f * cam_soa_.stride;
    for (std::size_t w = 0; w < total; ++w) {
      dst[w] = src[sl.ids[w]];
    }
  }
  sl.engine_gen = generation_;
  sl.row = row;
}

GridEvalEngine::CandView GridEvalEngine::flat_view(const geom::Vec2& p) const {
  const std::size_t b = point_cell(p);
  const std::uint32_t lo = cell_offsets_[b];
  return {soa_.data.data() + lo, soa_.stride, cell_entries_.data() + lo,
          cell_offsets_[b + 1] - lo};
}

GridEvalEngine::CandView GridEvalEngine::hier_view(const geom::Vec2& p) const {
  const auto c = static_cast<double>(cells_);
  const auto fx = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(p.x, 0.0) * c), cells_ - 1);
  const auto fy = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(p.y, 0.0) * c), cells_ - 1);
  const std::size_t t = (fx / kHierSubdiv) * tiles_ + (fy / kHierSubdiv);
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (tile_slot_[t] == 0) {
    lo = tile_offsets_[t];
    hi = tile_offsets_[t + 1];
  } else {
    constexpr std::size_t kLocals = kHierSubdiv * kHierSubdiv;
    const std::size_t li = (fx % kHierSubdiv) * kHierSubdiv + (fy % kHierSubdiv);
    const std::uint32_t* fo =
        fine_offsets_.data() + (tile_slot_[t] - 1) * (kLocals + 1);
    lo = fo[li];
    hi = fo[li + 1];
  }
  return {soa_.data.data() + lo, soa_.stride, cell_entries_.data() + lo, hi - lo};
}

GridEvalEngine::CandView GridEvalEngine::stream_view(std::size_t row,
                                                     const geom::Vec2& p,
                                                     GridEvalScratch& scratch) const {
  GridEvalScratch::RowSlice& sl = scratch.slice;
  if (sl.engine_gen != generation_ || sl.row != row) {
    build_row_slice(row, scratch);
  }
  std::size_t lo = 0;
  std::size_t hi = 0;
  if (stream_whole_) {
    hi = sl.ids.size();
  } else {
    const auto sd = static_cast<double>(cells_);
    std::ptrdiff_t xlo =
        static_cast<std::ptrdiff_t>(std::floor((p.x - max_r_) * sd)) - 1;
    std::ptrdiff_t xhi =
        static_cast<std::ptrdiff_t>(std::floor((p.x + max_r_) * sd)) + 1;
    if (mode_ == geom::SpaceMode::kPlane) {
      xlo = std::clamp<std::ptrdiff_t>(xlo, 0, static_cast<std::ptrdiff_t>(cells_) - 1);
      xhi = std::clamp<std::ptrdiff_t>(xhi, 0, static_cast<std::ptrdiff_t>(cells_) - 1);
    } else {
      xlo += ghost_;
      xhi += ghost_;
    }
    lo = sl.offsets[static_cast<std::size_t>(xlo)];
    hi = sl.offsets[static_cast<std::size_t>(xhi) + 1];
  }
  return {sl.soa.data() + lo, sl.stride, sl.ids.data() + lo, hi - lo};
}

GridEvalEngine::CandView GridEvalEngine::point_view(std::size_t row,
                                                    const geom::Vec2& p,
                                                    GridEvalScratch& scratch) const {
  switch (index_) {
    case IndexVariant::kFlat:
      return flat_view(p);
    case IndexVariant::kHier:
      return hier_view(p);
    case IndexVariant::kStream:
      return stream_view(row, p, scratch);
  }
  return {};
}

std::size_t GridEvalEngine::point_cell(const geom::Vec2& p) const {
  const auto c = static_cast<double>(cells_);
  const auto cx = std::min<std::size_t>(static_cast<std::size_t>(std::max(p.x, 0.0) * c),
                                        cells_ - 1);
  const auto cy = std::min<std::size_t>(static_cast<std::size_t>(std::max(p.y, 0.0) * c),
                                        cells_ - 1);
  return cx * cells_ + cy;
}

std::span<const std::uint32_t> GridEvalEngine::candidates(const geom::Vec2& p) const {
  switch (index_) {
    case IndexVariant::kFlat: {
      const CandView v = flat_view(p);
      return {v.ids, v.count};
    }
    case IndexVariant::kHier: {
      const CandView v = hier_view(p);
      return {v.ids, v.count};
    }
    case IndexVariant::kStream:
      break;
  }
  // Stream: no per-cell table exists; answer from the strip index with the
  // exact y prune at p (the kernel's own displacement sequence, so every
  // covering camera survives).  Unfiltered in x — still a duplicate-free
  // superset, each camera is binned exactly once.
  static thread_local std::vector<std::uint32_t> buf;
  buf.clear();
  const auto s_count = static_cast<std::ptrdiff_t>(cells_);
  const auto sd = static_cast<double>(cells_);
  const bool torus = mode_ == geom::SpaceMode::kTorus;
  std::ptrdiff_t s_lo =
      static_cast<std::ptrdiff_t>(std::floor((p.y - max_r_) * sd)) - 1;
  std::ptrdiff_t s_hi =
      static_cast<std::ptrdiff_t>(std::floor((p.y + max_r_) * sd)) + 1;
  std::ptrdiff_t s_span;
  if (torus) {
    s_span = std::min(s_hi - s_lo + 1, s_count);
  } else {
    s_lo = std::clamp<std::ptrdiff_t>(s_lo, 0, s_count - 1);
    s_hi = std::clamp<std::ptrdiff_t>(s_hi, 0, s_count - 1);
    s_span = s_hi - s_lo + 1;
  }
  const double* const cam_sy = cam_soa_.sy();
  const double* const cam_r2 = cam_soa_.r2();
  for (std::ptrdiff_t is = 0; is < s_span; ++is) {
    const auto s =
        static_cast<std::size_t>((((s_lo + is) % s_count) + s_count) % s_count);
    for (std::uint32_t e = strip_offsets_[s]; e < strip_offsets_[s + 1]; ++e) {
      const std::uint32_t cam = strip_entries_[e];
      double dy = p.y - cam_sy[cam];
      if (torus) {
        dy -= std::round(dy);
        if (dy >= 0.5) {
          dy -= 1.0;
        }
      }
      if (dy * dy <= cam_r2[cam]) {
        buf.push_back(cam);
      }
    }
  }
  return {buf.data(), buf.size()};
}

std::size_t GridEvalEngine::point_candidate_count(std::size_t row, std::size_t col,
                                                  GridEvalScratch& scratch) const {
  return point_view(row, grid_.point(row, col), scratch).count;
}

void GridEvalEngine::classify_entry(const CandView& view, std::size_t e,
                                    const geom::Vec2& p, GridEvalScratch& scratch,
                                    std::vector<double>& out, double* xs, double* ys,
                                    std::size_t& m) const {
  // The scalar oracle path, one entry at a time: displacement via the
  // per-point torus unwrap — the subtraction, `d -= round(d)`, and the
  // d >= 0.5 boundary fixup are `geom::wrap_delta` bit-for-bit
  // (wrap_delta's d < -0.5 fixup is dead code: a round-to-nearest
  // remainder lies in [-0.5, +0.5]), hence bit-identical to
  // geom::displacement — then the radius test on the squared distance and
  // trig-free field-of-view classifier — the real-math condition
  //     angular_distance(angle(d), orientation) <= fov/2
  //       <=>  dot(d, u) >= |d| * cos(fov/2)        (u = unit orientation)
  //       <=>  dot*|dot| >= q * |d|^2               (x*|x| is monotone)
  // decided outside a 1e-9 relative band around the threshold; inside the
  // band the scalar oracle's exact arithmetic is used, so the covered SET
  // always matches `covers`.  The vectorized kernels replicate exactly
  // this operation sequence per lane and route band/zero-distance lanes
  // back here, so every variant stays bit-identical.  The rare-branch
  // counters sit inside already-[[unlikely]] blocks.
  GridEvalCounters* const ctr = scratch.counters;
  double dx = p.x - view.sx()[e];
  double dy = p.y - view.sy()[e];
  if (mode_ == geom::SpaceMode::kTorus) {
    dx -= std::round(dx);
    if (dx >= 0.5) {
      dx -= 1.0;
    }
    dy -= std::round(dy);
    if (dy >= 0.5) {
      dy -= 1.0;
    }
  }
  const double n2 = dx * dx + dy * dy;
  const double dot = dx * view.cu()[e] + dy * view.su()[e];
  const double lhs = dot * std::abs(dot);
  const double rhs = view.q()[e] * n2;
  const double band = 1e-9 * n2;
  const bool in_radius = n2 <= view.r2()[e];
  const bool omni = std::bit_cast<std::uint64_t>(view.omni()[e]) != 0;
  bool covered = in_radius & (omni | (lhs - rhs > band));
  if (in_radius & !omni & (std::abs(lhs - rhs) <= band)) [[unlikely]] {
    if (ctr != nullptr) {
      ++ctr->trig_fallbacks;
    }
    if (n2 == 0.0) {
      out.push_back(0.0);  // point coincides with the camera
      return;
    }
    const Camera& cam = net_->cameras()[view.ids[e]];
    covered =
        geom::angular_distance(std::atan2(dy, dx), cam.orientation) <= 0.5 * cam.fov;
  }
  if (covered & (n2 == 0.0)) [[unlikely]] {  // omni camera at the point
    out.push_back(0.0);
    return;
  }
  // Branchless compaction: always write, advance on coverage.
  xs[m] = dx;
  ys[m] = dy;
  m += static_cast<std::size_t>(covered);
}

void GridEvalEngine::gather_directions(const geom::Vec2& p, const CandView& view,
                                       GridEvalScratch& scratch) const {
  std::vector<double>& out = scratch.angles;
  const std::size_t cnt = view.count;
  // Metrics are per point (one pointer test), never per candidate.
  GridEvalCounters* const ctr = scratch.counters;
  const std::size_t out_before = out.size();
  if (ctr != nullptr) [[unlikely]] {
    ++ctr->points;
    ctr->candidates_total += cnt;
    ctr->candidates_per_point.add(cnt);
  }
  std::vector<double>& xs = scratch.dxs;
  std::vector<double>& ys = scratch.dys;
  if (xs.size() < cnt) {
    xs.resize(cnt);
    ys.resize(cnt);
  }
  std::size_t m = 0;
  std::size_t e = 0;
  // Lane-parallel classify over whole lane groups of the span's entries.
  // Lanes the kernel flags as special — exact-arithmetic band hits and
  // zero-distance hits — are replayed through the scalar path, which
  // re-derives their classification (and counters) exactly as the scalar
  // kernel would.
  if (classify_ != nullptr) {
    const std::size_t vec_n = cnt & ~std::size_t{3};
    if (vec_n != 0) {
      if (scratch.special.size() < cnt) {
        scratch.special.resize(cnt);
      }
      const detail::CandSpans spans{view.sx(), view.sy(), view.r2(), view.cu(),
                                    view.su(), view.q(), view.omni()};
      const detail::ClassifyResult res =
          classify_(spans, vec_n, p.x, p.y, mode_ == geom::SpaceMode::kTorus,
                    xs.data(), ys.data(), scratch.special.data());
      m = res.covered;
      for (std::size_t j = 0; j < res.special; ++j) {
        classify_entry(view, scratch.special[j], p, scratch, out, xs.data(),
                       ys.data(), m);
      }
      e = vec_n;
    }
  }
  // Scalar path: the whole span (scalar variant), or the remainder tail
  // (vector variants).
  for (; e < cnt; ++e) {
    classify_entry(view, e, p, scratch, out, xs.data(), ys.data(), m);
  }
  // atan2 (the single most expensive operation) runs in its own tight loop
  // over the ~covered survivors instead of stalling the classify pipeline.
  // The oracle's `normalize_angle(dir_sp + pi)` reduces to a branch because
  // fmod is the identity on [0, 2*pi).  One resize + raw writes, so the
  // loop carries no per-element capacity check.
  const std::size_t base = out.size();
  out.resize(base + m);
  double* const emit = out.data() + base;
  for (std::size_t j = 0; j < m; ++j) {
    const double v = std::atan2(ys[j], xs[j]) + geom::kPi;
    emit[j] = v >= geom::kTwoPi ? 0.0 : v;
  }
  if (ctr != nullptr) [[unlikely]] {
    ctr->directions_total += out.size() - out_before;
  }
}

std::size_t GridEvalEngine::covered_count_at_least(const geom::Vec2& p,
                                                   const CandView& view,
                                                   std::size_t k) const {
  // Coverage-count variant of gather_directions: same covered set, no
  // atan2 on the fast path, early exit at k.
  const std::span<const Camera> cams = net_->cameras();
  const bool torus = mode_ == geom::SpaceMode::kTorus;
  std::size_t count = 0;
  for (std::size_t e = 0; e < view.count && count < k; ++e) {
    double dx = p.x - view.sx()[e];
    double dy = p.y - view.sy()[e];
    if (torus) {
      dx -= std::round(dx);
      if (dx >= 0.5) {
        dx -= 1.0;
      }
      dy -= std::round(dy);
      if (dy >= 0.5) {
        dy -= 1.0;
      }
    }
    const double n2 = dx * dx + dy * dy;
    const double dot = dx * view.cu()[e] + dy * view.su()[e];
    const double lhs = dot * std::abs(dot);
    const double rhs = view.q()[e] * n2;
    const double band = 1e-9 * n2;
    const bool in_radius = n2 <= view.r2()[e];
    const bool omni = std::bit_cast<std::uint64_t>(view.omni()[e]) != 0;
    bool covered = in_radius & (omni | (lhs - rhs > band));
    if (in_radius & !omni & (std::abs(lhs - rhs) <= band)) [[unlikely]] {
      if (n2 == 0.0) {
        ++count;  // point coincides with the camera: always covered
        continue;
      }
      const Camera& cam = cams[view.ids[e]];
      covered =
          geom::angular_distance(std::atan2(dy, dx), cam.orientation) <= 0.5 * cam.fov;
    }
    count += static_cast<std::size_t>(covered);
  }
  return count;
}

std::span<const double> GridEvalEngine::sorted_directions(std::size_t row,
                                                          std::size_t col,
                                                          GridEvalScratch& scratch) const {
  scratch.angles.clear();
  const geom::Vec2 p = grid_.point(row, col);
  const CandView view = point_view(row, p, scratch);
  gather_directions(p, view, scratch);
  sort_directions(scratch);
  return scratch.angles;
}

void GridEvalEngine::sort_directions(GridEvalScratch& scratch) {
  std::vector<double>& a = scratch.angles;
  // Direction buffers are small (the point's covering-camera count), so
  // insertion sort beats std::sort's dispatch; the sorted sequence is the
  // same for any comparison sort (the values are NaN-free doubles in
  // [0, 2*pi)).  Mid-sized buffers get a 32-bucket counting presort first:
  // the bucket index floor(v * 32 / 2*pi) is monotone in v, so the scatter
  // leaves only intra-bucket inversions and the insertion pass runs in
  // near-linear time instead of n^2/4 moves.
  const std::size_t n = a.size();
  auto insertion = [](double* buf, std::size_t len) {
    for (std::size_t i = 1; i < len; ++i) {
      const double v = buf[i];
      std::size_t j = i;
      for (; j > 0 && buf[j - 1] > v; --j) {
        buf[j] = buf[j - 1];
      }
      buf[j] = v;
    }
  };
  if (n <= 12) {
    insertion(a.data(), n);
  } else if (n <= 48) {
    const double scale = 32.0 / geom::kTwoPi;
    unsigned cnt[33] = {0};
    unsigned bk[48];
    double tmp[48];
    for (std::size_t i = 0; i < n; ++i) {
      const auto b = std::min(static_cast<unsigned>(a[i] * scale), 31U);
      bk[i] = b;
      ++cnt[b + 1];
    }
    for (std::size_t b = 0; b < 32; ++b) {
      cnt[b + 1] += cnt[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      tmp[cnt[bk[i]]++] = a[i];
    }
    std::copy(tmp, tmp + n, a.data());
    insertion(a.data(), n);
  } else {
    std::sort(a.begin(), a.end());
  }
}

GridEvalEngine::CandView GridEvalEngine::arbitrary_view(
    const geom::Vec2& p, GridEvalScratch& scratch) const {
  switch (index_) {
    case IndexVariant::kFlat:
      return flat_view(p);
    case IndexVariant::kHier:
      return hier_view(p);
    case IndexVariant::kStream:
      break;
  }
  // Stream: `candidates(p)` prunes the strip bins by exact y distance —
  // still a duplicate-free superset of the covering set — and the per-id
  // records are copied field-by-field out of the per-camera pool, so the
  // classify pipeline sees the exact bits `fill_soa` wrote.
  const std::span<const std::uint32_t> ids = candidates(p);
  const std::size_t n = ids.size();
  scratch.point_ids.assign(ids.begin(), ids.end());
  scratch.point_soa.resize(7 * n);
  const std::size_t cam_stride = cam_soa_.stride;
  const double* const pool = cam_soa_.data.data();
  for (std::size_t f = 0; f < 7; ++f) {
    double* const dst = scratch.point_soa.data() + f * n;
    const double* const src = pool + f * cam_stride;
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = src[scratch.point_ids[i]];
    }
  }
  return {scratch.point_soa.data(), n, scratch.point_ids.data(), n};
}

PointEval GridEvalEngine::eval_point(const geom::Vec2& p,
                                     GridEvalScratch& scratch) const {
  scratch.angles.clear();
  gather_directions(p, arbitrary_view(p, scratch), scratch);
  sort_directions(scratch);
  const std::span<const double> dirs = scratch.angles;
  PointEval res;
  res.full_view = full_view_from_sorted(dirs, theta_);
  res.necessary = arcs_all_hit(dirs, necessary_arcs_);
  res.sufficient = arcs_all_hit(dirs, sufficient_arcs_);
  return res;
}

FullViewResult GridEvalEngine::point_full_view(std::size_t row, std::size_t col,
                                               GridEvalScratch& scratch) const {
  return full_view_from_sorted(sorted_directions(row, col, scratch), theta_);
}

bool GridEvalEngine::point_necessary(std::size_t row, std::size_t col,
                                     GridEvalScratch& scratch) const {
  return arcs_all_hit(sorted_directions(row, col, scratch), necessary_arcs_);
}

bool GridEvalEngine::point_sufficient(std::size_t row, std::size_t col,
                                      GridEvalScratch& scratch) const {
  return arcs_all_hit(sorted_directions(row, col, scratch), sufficient_arcs_);
}

GridRowStats GridEvalEngine::row_stats(std::size_t row, GridEvalScratch& scratch) const {
  GridRowStats rs;
  bool first = true;
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (!dirs.empty()) {
      ++rs.covered_1;
    }
    if (dirs.size() >= implied_k_) {
      ++rs.k_covered_ok;
    }
    const SortedGap gap = max_gap_sorted(dirs);
    if (!dirs.empty() && gap.width <= 2.0 * theta_) {
      ++rs.full_view_ok;
    }
    if (arcs_all_hit(dirs, necessary_arcs_)) {
      ++rs.necessary_ok;
    }
    if (arcs_all_hit(dirs, sufficient_arcs_)) {
      ++rs.sufficient_ok;
    }
    if (first) {
      rs.min_max_gap = rs.max_max_gap = gap.width;
      first = false;
    } else {
      rs.min_max_gap = std::min(rs.min_max_gap, gap.width);
      rs.max_max_gap = std::max(rs.max_max_gap, gap.width);
    }
  }
  return rs;
}

GridRowStats GridEvalEngine::block_stats(std::size_t row_begin, std::size_t row_end,
                                         GridEvalScratch& scratch) const {
  // Row-order fold, initialized from the first row: identical to the slice
  // [row_begin, row_end) of the serial reduction in `evaluate`, so block
  // partitions recombine bit-exactly.
  GridRowStats acc;
  for (std::size_t row = row_begin; row < row_end; ++row) {
    const GridRowStats rs = row_stats(row, scratch);
    acc.covered_1 += rs.covered_1;
    acc.necessary_ok += rs.necessary_ok;
    acc.full_view_ok += rs.full_view_ok;
    acc.sufficient_ok += rs.sufficient_ok;
    acc.k_covered_ok += rs.k_covered_ok;
    if (row == row_begin) {
      acc.min_max_gap = rs.min_max_gap;
      acc.max_max_gap = rs.max_max_gap;
    } else {
      acc.min_max_gap = std::min(acc.min_max_gap, rs.min_max_gap);
      acc.max_max_gap = std::max(acc.max_max_gap, rs.max_max_gap);
    }
  }
  return acc;
}

RegionCoverageStats GridEvalEngine::evaluate(GridEvalScratch& scratch) const {
  const obs::TraceScope scope("engine.evaluate", obs::TraceCategory::kEngine,
                              "points", grid_.size(), "kernel_lanes",
                              kernel_lanes(kernel_));
  RegionCoverageStats stats;
  stats.total_points = grid_.size();
  for (std::size_t row = 0; row < rows(); ++row) {
    const GridRowStats rs = row_stats(row, scratch);
    stats.covered_1 += rs.covered_1;
    stats.necessary_ok += rs.necessary_ok;
    stats.full_view_ok += rs.full_view_ok;
    stats.sufficient_ok += rs.sufficient_ok;
    stats.k_covered_ok += rs.k_covered_ok;
    if (row == 0) {
      stats.min_max_gap = rs.min_max_gap;
      stats.max_max_gap = rs.max_max_gap;
    } else {
      stats.min_max_gap = std::min(stats.min_max_gap, rs.min_max_gap);
      stats.max_max_gap = std::max(stats.max_max_gap, rs.max_max_gap);
    }
  }
  return stats;
}

GridRowEvents GridEvalEngine::row_events(std::size_t row, GridEvalScratch& scratch,
                                         bool need_full_view,
                                         bool need_sufficient) const {
  GridRowEvents ev;
  ev.all_full_view = need_full_view;
  ev.all_sufficient = need_sufficient;
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (!arcs_all_hit(dirs, necessary_arcs_)) {
      return {false, false, false};
    }
    if (ev.all_full_view) {
      const SortedGap gap = max_gap_sorted(dirs);
      if (dirs.empty() || gap.width > 2.0 * theta_) {
        ev.all_full_view = false;
        ev.all_sufficient = false;  // sufficient implies full view
      }
    }
    if (ev.all_sufficient && !arcs_all_hit(dirs, sufficient_arcs_)) {
      ev.all_sufficient = false;
    }
  }
  return ev;
}

bool GridEvalEngine::row_all_necessary(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    if (!arcs_all_hit(sorted_directions(row, col, scratch), necessary_arcs_)) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_sufficient(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    if (!arcs_all_hit(sorted_directions(row, col, scratch), sufficient_arcs_)) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_full_view(std::size_t row, GridEvalScratch& scratch) const {
  for (std::size_t col = 0; col < cols(); ++col) {
    const std::span<const double> dirs = sorted_directions(row, col, scratch);
    if (dirs.empty() || max_gap_sorted(dirs).width > 2.0 * theta_) {
      return false;
    }
  }
  return true;
}

bool GridEvalEngine::row_all_k_covered(std::size_t row, std::size_t k,
                                       GridEvalScratch& scratch) const {
  if (k == 0) {
    return true;
  }
  for (std::size_t col = 0; col < cols(); ++col) {
    const geom::Vec2 p = grid_.point(row, col);
    const CandView view = point_view(row, p, scratch);
    if (covered_count_at_least(p, view, k) < k) {
      return false;
    }
  }
  return true;
}

}  // namespace fvc::core
