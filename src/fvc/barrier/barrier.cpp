#include "fvc/barrier/barrier.hpp"

#include <deque>
#include <limits>
#include <stdexcept>

#include "fvc/core/full_view.hpp"

namespace fvc::barrier {

geom::Vec2 BarrierSpec::probe(std::size_t row, std::size_t col) const {
  const double x = (static_cast<double>(col) + 0.5) / static_cast<double>(columns);
  const double y =
      y_lo + (static_cast<double>(row) + 0.5) * (y_hi - y_lo) / static_cast<double>(rows);
  return {x, y};
}

void validate(const BarrierSpec& spec) {
  if (!(spec.y_lo >= 0.0) || !(spec.y_hi <= 1.0) || !(spec.y_lo < spec.y_hi)) {
    throw std::invalid_argument("BarrierSpec: need 0 <= y_lo < y_hi <= 1");
  }
  if (spec.columns == 0 || spec.rows == 0) {
    throw std::invalid_argument("BarrierSpec: grid must be non-degenerate");
  }
}

std::vector<bool> coverage_mask(const BarrierSpec& spec, const CellPredicate& covered) {
  validate(spec);
  std::vector<bool> mask(spec.rows * spec.columns, false);
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.columns; ++c) {
      mask[r * spec.columns + c] = covered(spec.probe(r, c));
    }
  }
  return mask;
}

std::vector<bool> coverage_mask(const core::Network& net, const BarrierSpec& spec,
                                double theta) {
  core::validate_theta(theta);
  std::vector<double> dirs;
  return coverage_mask(spec, [&](const geom::Vec2& p) {
    net.viewed_directions_into(p, dirs);
    return core::full_view_covered(dirs, theta).covered;
  });
}

bool weak_barrier_covered(const std::vector<bool>& mask, const BarrierSpec& spec) {
  validate(spec);
  if (mask.size() != spec.rows * spec.columns) {
    throw std::invalid_argument("weak_barrier_covered: mask size mismatch");
  }
  for (std::size_t c = 0; c < spec.columns; ++c) {
    bool column_hit = false;
    for (std::size_t r = 0; r < spec.rows; ++r) {
      if (mask[r * spec.columns + c]) {
        column_hit = true;
        break;
      }
    }
    if (!column_hit) {
      return false;
    }
  }
  return true;
}

bool strong_barrier_covered(const std::vector<bool>& mask, const BarrierSpec& spec) {
  validate(spec);
  if (mask.size() != spec.rows * spec.columns) {
    throw std::invalid_argument("strong_barrier_covered: mask size mismatch");
  }
  const std::ptrdiff_t rows = static_cast<std::ptrdiff_t>(spec.rows);
  const std::ptrdiff_t cols = static_cast<std::ptrdiff_t>(spec.columns);

  // BFS over covered cells with 8-connectivity; columns wrap, rows do not.
  // Each visited cell records an "unwrapped" x offset; reaching a visited
  // cell at a different offset means the component loops around the torus.
  constexpr std::ptrdiff_t kUnvisited = std::numeric_limits<std::ptrdiff_t>::min();
  std::vector<std::ptrdiff_t> offset(mask.size(), kUnvisited);
  const auto idx = [cols](std::ptrdiff_t r, std::ptrdiff_t c) {
    return static_cast<std::size_t>(r * cols + c);
  };

  for (std::ptrdiff_t r0 = 0; r0 < rows; ++r0) {
    // Only need to seed from column 0's vicinity: any wrapping band crosses
    // every column, so seeding all cells in column 0 suffices.
    const std::ptrdiff_t c0 = 0;
    if (!mask[idx(r0, c0)] || offset[idx(r0, c0)] != kUnvisited) {
      continue;
    }
    struct Node {
      std::ptrdiff_t r;
      std::ptrdiff_t c;       // canonical column in [0, cols)
      std::ptrdiff_t unwrapped;  // unwrapped column coordinate
    };
    std::deque<Node> queue;
    offset[idx(r0, c0)] = 0;
    queue.push_back({r0, c0, 0});
    while (!queue.empty()) {
      const Node cur = queue.front();
      queue.pop_front();
      for (std::ptrdiff_t dr = -1; dr <= 1; ++dr) {
        for (std::ptrdiff_t dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) {
            continue;
          }
          const std::ptrdiff_t nr = cur.r + dr;
          if (nr < 0 || nr >= rows) {
            continue;
          }
          const std::ptrdiff_t unwrapped = cur.unwrapped + dc;
          const std::ptrdiff_t nc = ((cur.c + dc) % cols + cols) % cols;
          if (!mask[idx(nr, nc)]) {
            continue;
          }
          if (offset[idx(nr, nc)] == kUnvisited) {
            offset[idx(nr, nc)] = unwrapped;
            queue.push_back({nr, nc, unwrapped});
          } else if (offset[idx(nr, nc)] != unwrapped) {
            // Same cell reached with two different unwrapped x coordinates:
            // the component wraps the x-period.
            return true;
          }
        }
      }
    }
  }
  return false;
}

BarrierResult evaluate_barrier(const core::Network& net, const BarrierSpec& spec,
                               double theta) {
  const std::vector<bool> mask = coverage_mask(net, spec, theta);
  BarrierResult result;
  result.weak = weak_barrier_covered(mask, spec);
  result.strong = strong_barrier_covered(mask, spec);
  std::size_t covered = 0;
  for (bool b : mask) {
    covered += b ? 1 : 0;
  }
  result.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(mask.size());
  return result;
}

}  // namespace fvc::barrier
