/// \file barrier.hpp
/// \brief Full-view barrier coverage — the paper's announced future-work
/// topic ("the critical condition to reach barrier full view coverage will
/// be an absorbing topic as well", Section VIII).
///
/// A barrier is a horizontal strip [0,1) x [y_lo, y_hi] of the region.  An
/// intruder crosses it by a path from below y_lo to above y_hi.  Two
/// classical notions, lifted to full-view coverage:
///
///  * WEAK barrier coverage: every vertical crossing line meets a
///    full-view covered point — defeats intruders that only move straight
///    up.  Discretized: every column of the strip grid contains a
///    full-view covered cell.
///  * STRONG barrier coverage: every crossing path meets a full-view
///    covered point — requires the covered cells to contain a connected
///    band wrapping around the x-period of the torus.  Discretized: BFS
///    over the covered cells with x-wraparound adjacency, detecting a
///    component that closes the loop in x (a cell reached at two different
///    unwrapped x offsets).
///
/// Both checks run on a strip grid whose cells are probe points spaced
/// like the paper's dense grid.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::barrier {

/// Geometry and resolution of a barrier strip.
struct BarrierSpec {
  double y_lo = 0.45;        ///< lower edge of the strip
  double y_hi = 0.55;        ///< upper edge of the strip
  std::size_t columns = 64;  ///< probe columns across the x-period
  std::size_t rows = 8;      ///< probe rows across the strip height

  /// Probe point at (row, col): cell centres of the strip grid.
  [[nodiscard]] geom::Vec2 probe(std::size_t row, std::size_t col) const;
};

/// Validate a spec; throws std::invalid_argument when the strip is empty,
/// outside [0,1], or the grid is degenerate.
void validate(const BarrierSpec& spec);

/// Per-cell coverage mask of the strip: mask[row * columns + col] is true
/// when the probe point is full-view covered with effective angle theta.
[[nodiscard]] std::vector<bool> coverage_mask(const core::Network& net,
                                              const BarrierSpec& spec, double theta);

/// Generic predicate form used by the checkers below (lets tests supply
/// synthetic masks and future callers plug in k-full-view or probabilistic
/// predicates).
using CellPredicate = std::function<bool(const geom::Vec2&)>;

[[nodiscard]] std::vector<bool> coverage_mask(const BarrierSpec& spec,
                                              const CellPredicate& covered);

/// Weak full-view barrier coverage: every column has a covered cell.
[[nodiscard]] bool weak_barrier_covered(const std::vector<bool>& mask,
                                        const BarrierSpec& spec);

/// Strong full-view barrier coverage: the covered cells contain a
/// connected band (8-connectivity, x wraps) that loops around the torus's
/// x-period.
[[nodiscard]] bool strong_barrier_covered(const std::vector<bool>& mask,
                                          const BarrierSpec& spec);

/// Convenience: evaluate both notions for a network.
struct BarrierResult {
  bool weak = false;
  bool strong = false;
  double covered_fraction = 0.0;  ///< fraction of strip cells covered
};
[[nodiscard]] BarrierResult evaluate_barrier(const core::Network& net,
                                             const BarrierSpec& spec, double theta);

}  // namespace fvc::barrier
