/// \file orient_optimizer.hpp
/// \brief Orientation optimization for fixed camera positions.
///
/// The paper's model fixes orientations at deployment time, uniformly at
/// random; the STEER ablation shows what full steering would buy.  The
/// practical middle ground is one-shot AIMING: positions are wherever the
/// airdrop put them, but each camera's mount is set once, deliberately,
/// before operation.  This module implements coordinate-ascent aiming:
/// sweep the cameras repeatedly, re-aiming each to the candidate
/// orientation that maximizes the number of grid points full-view covered
/// (ties keep the incumbent), until a full sweep makes no improvement.
///
/// The AIM bench quantifies the gain over random orientations across the
/// CSA band — deliberate aiming buys roughly one CSA multiple.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"

namespace fvc::opt {

/// Aiming configuration.
struct AimConfig {
  double theta = 1.0;               ///< effective angle to optimize for
  std::size_t candidates = 16;      ///< evenly spaced orientations tried per camera
  std::size_t max_sweeps = 8;       ///< full passes over the fleet
  /// \throws std::invalid_argument on theta outside (0, pi], fewer than 2
  /// candidates, or zero sweeps.
  void validate() const;
};

/// Result of an aiming run.
struct AimResult {
  std::vector<core::Camera> cameras;    ///< the re-aimed fleet
  std::size_t initial_covered = 0;      ///< grid points full-view covered before
  std::size_t final_covered = 0;        ///< ... and after
  std::size_t sweeps_used = 0;          ///< sweeps until convergence/cap
  std::size_t reorientations = 0;       ///< cameras whose aim changed
};

/// Optimize the orientations of `net`'s cameras against `grid`.
/// Positions, radii and fovs are untouched.  Deterministic.
[[nodiscard]] AimResult optimize_orientations(const core::Network& net,
                                              const core::DenseGrid& grid,
                                              const AimConfig& config);

}  // namespace fvc::opt
