#include "fvc/opt/greedy_repair.hpp"

#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/torus.hpp"

namespace fvc::opt {

namespace {

void check(const RepairConfig& cfg) {
  core::validate_theta(cfg.theta);
  if (!(cfg.camera_radius > 0.0)) {
    throw std::invalid_argument("RepairConfig: camera_radius must be positive");
  }
  if (!(cfg.camera_fov > 0.0) || cfg.camera_fov > geom::kTwoPi) {
    throw std::invalid_argument("RepairConfig: camera_fov must be in (0, 2*pi]");
  }
  if (!(cfg.standoff_fraction > 0.0) || cfg.standoff_fraction > 1.0) {
    throw std::invalid_argument("RepairConfig: standoff_fraction in (0, 1]");
  }
}

/// The worst hole: grid point with the largest angular gap, with its
/// witness direction.  Returns false when the grid is fully covered.
struct Hole {
  geom::Vec2 point;
  double gap = 0.0;
  double witness = 0.0;
};

bool worst_hole(const core::Network& net, const core::DenseGrid& grid, double theta,
                Hole& out, std::size_t& hole_count) {
  bool found = false;
  hole_count = 0;
  std::vector<double> dirs;
  grid.for_each([&](std::size_t, const geom::Vec2& p) {
    net.viewed_directions_into(p, dirs);
    const core::FullViewResult r = core::full_view_covered(dirs, theta);
    if (r.covered) {
      return;
    }
    ++hole_count;
    if (!found || r.max_gap > out.gap) {
      found = true;
      out.point = p;
      out.gap = r.max_gap;
      out.witness = r.witness_unsafe_direction.value_or(0.0);
    }
  });
  return found;
}

}  // namespace

RepairResult repair_full_view(const core::Network& net, const core::DenseGrid& grid,
                              const RepairConfig& cfg) {
  check(cfg);
  RepairResult result;
  std::vector<core::Camera> all(net.cameras().begin(), net.cameras().end());

  Hole hole;
  std::size_t holes = 0;
  if (!worst_hole(net, grid, cfg.theta, hole, holes)) {
    result.success = true;
    return result;
  }
  result.initial_holes = holes;

  for (std::size_t added = 0; added < cfg.max_added; ++added) {
    // Place a camera along the witness direction at a fraction of its
    // radius, looking back at the hole: the hole then has a covering
    // sensor whose viewed direction IS the witness direction, splitting
    // the widest gap.
    core::Camera patch;
    const geom::Vec2 offset =
        geom::Vec2::from_angle(hole.witness) * (cfg.standoff_fraction * cfg.camera_radius);
    patch.position = hole.point + offset;
    if (net.mode() == geom::SpaceMode::kTorus) {
      patch.position = geom::UnitTorus::wrap(patch.position);
    } else {
      patch.position.x = std::min(1.0, std::max(0.0, patch.position.x));
      patch.position.y = std::min(1.0, std::max(0.0, patch.position.y));
    }
    patch.orientation = geom::normalize_angle(hole.witness + geom::kPi);  // face the hole
    patch.radius = cfg.camera_radius;
    patch.fov = cfg.camera_fov;
    patch.group = 0;
    all.push_back(patch);
    result.added.push_back(patch);

    const core::Network updated(all, net.mode());
    if (!worst_hole(updated, grid, cfg.theta, hole, holes)) {
      result.success = true;
      return result;
    }
  }
  return result;
}

core::Network apply_repair(const core::Network& net, const RepairResult& result) {
  std::vector<core::Camera> all(net.cameras().begin(), net.cameras().end());
  all.insert(all.end(), result.added.begin(), result.added.end());
  return core::Network(std::move(all), net.mode());
}

}  // namespace fvc::opt
