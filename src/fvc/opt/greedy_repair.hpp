/// \file greedy_repair.hpp
/// \brief Greedy hole repair: patch a random deployment up to full-view
/// coverage with the fewest added cameras.
///
/// Section VI-C shows that inside the CSA band coverage is a random event;
/// a practical deployment that lands in the band (or below) needs manual
/// fixing.  The repairer runs the audit, takes the worst hole (the grid
/// point with the largest angular gap), and places one camera looking back
/// at that point from the direction the gap's witness points at — the
/// placement that closes the widest gap first — then repeats.
///
/// This is an engineering companion to the theory, not a claim from the
/// paper; the REPAIR bench quantifies how many extra cameras random
/// deployments need at various q = s_c/s_Nc operating points.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"

namespace fvc::opt {

/// Repair configuration.
struct RepairConfig {
  double theta = 1.0;          ///< effective angle to repair for
  double camera_radius = 0.1;  ///< hardware of the patch cameras
  double camera_fov = 2.0;
  std::size_t max_added = 1000;  ///< give up after this many additions
  /// Fraction of the patch camera's radius at which it is placed from the
  /// hole, along the witness direction (0.5 = half a radius away).
  double standoff_fraction = 0.5;
};

/// Result of a repair run.
struct RepairResult {
  std::vector<core::Camera> added;  ///< cameras appended, in order
  bool success = false;             ///< grid fully full-view covered at the end
  std::size_t initial_holes = 0;    ///< grid points failing before repair
};

/// Repair `net` (non-destructively: returns the additions) until every
/// point of `grid` is full-view covered with `cfg.theta`, or the budget
/// runs out.
/// \throws std::invalid_argument on bad config.
[[nodiscard]] RepairResult repair_full_view(const core::Network& net,
                                            const core::DenseGrid& grid,
                                            const RepairConfig& cfg);

/// Apply a repair: the original cameras plus the additions, as a network
/// in the same space mode.
[[nodiscard]] core::Network apply_repair(const core::Network& net,
                                         const RepairResult& result);

}  // namespace fvc::opt
