#include "fvc/opt/orient_optimizer.hpp"

#include <stdexcept>

#include "fvc/core/coverage.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/core/spatial_index.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::opt {

void AimConfig::validate() const {
  core::validate_theta(theta);
  if (candidates < 2) {
    throw std::invalid_argument("AimConfig: need at least two candidate orientations");
  }
  if (max_sweeps == 0) {
    throw std::invalid_argument("AimConfig: max_sweeps must be >= 1");
  }
}

namespace {

/// Mutable evaluation state: cameras may be re-aimed in place (positions
/// fixed), queries run against a position-built spatial index.
class MutableFleet {
 public:
  MutableFleet(const core::Network& net, const core::DenseGrid& grid)
      : cameras_(net.cameras().begin(), net.cameras().end()), mode_(net.mode()) {
    std::vector<geom::Vec2> positions;
    positions.reserve(cameras_.size());
    double max_radius = 1e-6;
    for (const core::Camera& cam : cameras_) {
      positions.push_back(cam.position);
      max_radius = std::max(max_radius, cam.radius);
    }
    if (!cameras_.empty()) {
      index_ = core::SpatialIndex(positions, max_radius);
    }
    points_.reserve(grid.size());
    grid.for_each([&](std::size_t, const geom::Vec2& p) { points_.push_back(p); });
  }

  [[nodiscard]] std::vector<core::Camera>& cameras() { return cameras_; }
  [[nodiscard]] const std::vector<geom::Vec2>& points() const { return points_; }

  /// Is grid point `p` full-view covered under the current orientations?
  [[nodiscard]] bool point_covered(const geom::Vec2& p, double theta) const {
    dirs_.clear();
    index_.for_each_candidate(p, [&](std::size_t i) {
      if (const auto dir = core::viewed_direction_if_covered(cameras_[i], p, mode_)) {
        dirs_.push_back(*dir);
      }
    });
    return core::full_view_covered(dirs_, theta).covered;
  }

  /// Grid points within camera i's range (the only ones its aim affects).
  [[nodiscard]] std::vector<std::size_t> affected_points(std::size_t i) const {
    std::vector<std::size_t> out;
    const core::Camera& cam = cameras_[i];
    const double r2 = cam.radius * cam.radius;
    for (std::size_t j = 0; j < points_.size(); ++j) {
      if (geom::displacement(cam.position, points_[j], mode_).norm2() <= r2) {
        out.push_back(j);
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t total_covered(double theta) const {
    std::size_t covered = 0;
    for (const geom::Vec2& p : points_) {
      covered += point_covered(p, theta) ? 1 : 0;
    }
    return covered;
  }

 private:
  std::vector<core::Camera> cameras_;
  geom::SpaceMode mode_;
  core::SpatialIndex index_;
  std::vector<geom::Vec2> points_;
  mutable std::vector<double> dirs_;
};

}  // namespace

AimResult optimize_orientations(const core::Network& net, const core::DenseGrid& grid,
                                const AimConfig& config) {
  config.validate();
  MutableFleet fleet(net, grid);
  AimResult result;
  result.initial_covered = fleet.total_covered(config.theta);
  result.final_covered = result.initial_covered;
  if (fleet.cameras().empty()) {
    return result;
  }

  for (std::size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool improved = false;
    ++result.sweeps_used;
    for (std::size_t i = 0; i < fleet.cameras().size(); ++i) {
      const auto affected = fleet.affected_points(i);
      if (affected.empty()) {
        continue;
      }
      core::Camera& cam = fleet.cameras()[i];
      const double incumbent_orientation = cam.orientation;
      const auto local_score = [&]() {
        std::size_t covered = 0;
        for (std::size_t j : affected) {
          covered += fleet.point_covered(fleet.points()[j], config.theta) ? 1 : 0;
        }
        return covered;
      };
      std::size_t best_score = local_score();
      double best_orientation = incumbent_orientation;
      for (std::size_t c = 0; c < config.candidates; ++c) {
        const double candidate = static_cast<double>(c) * geom::kTwoPi /
                                 static_cast<double>(config.candidates);
        cam.orientation = candidate;
        const std::size_t score = local_score();
        if (score > best_score) {
          best_score = score;
          best_orientation = candidate;
        }
      }
      cam.orientation = best_orientation;
      if (best_orientation != incumbent_orientation) {
        ++result.reorientations;
        improved = true;
      }
    }
    if (!improved) {
      break;
    }
  }
  result.final_covered = fleet.total_covered(config.theta);
  result.cameras = fleet.cameras();
  return result;
}

}  // namespace fvc::opt
