/// \file poisson.hpp
/// \brief Poisson point process deployment (paper Section V).
///
/// A 2-D Poisson process of density n on the unit torus: the total sensor
/// count is Poisson(n) and positions are conditionally i.i.d. uniform.
/// Heterogeneity uses Poisson thinning — each sensor joins group y with
/// probability c_y independently — so group y is itself a Poisson process
/// of density n_y = c_y * n, exactly the model of Theorems 3 and 4.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/camera_group.hpp"
#include "fvc/core/network.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// Deploy a Poisson(density) number of cameras; group membership by
/// independent thinning with the profile fractions.
[[nodiscard]] std::vector<core::Camera> deploy_poisson(
    const core::HeterogeneousProfile& profile, double density, stats::Pcg32& rng);

/// As `deploy_poisson`, wrapped into a Network.
[[nodiscard]] core::Network deploy_poisson_network(
    const core::HeterogeneousProfile& profile, double density, stats::Pcg32& rng);

}  // namespace fvc::deploy
