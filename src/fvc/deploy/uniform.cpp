#include "fvc/deploy/uniform.hpp"

#include "fvc/deploy/orientation.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {

std::vector<core::Camera> deploy_uniform(const core::HeterogeneousProfile& profile,
                                         std::size_t n, stats::Pcg32& rng) {
  const auto counts = profile.counts(n);
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  cameras.reserve(n);
  for (std::size_t y = 0; y < groups.size(); ++y) {
    for (std::size_t i = 0; i < counts[y]; ++i) {
      core::Camera cam;
      cam.position = {stats::uniform01(rng), stats::uniform01(rng)};
      cam.orientation = random_orientation(rng);
      cam.radius = groups[y].radius;
      cam.fov = groups[y].fov;
      cam.group = static_cast<std::uint32_t>(y);
      cameras.push_back(cam);
    }
  }
  return cameras;
}

core::Network deploy_uniform_network(const core::HeterogeneousProfile& profile,
                                     std::size_t n, stats::Pcg32& rng) {
  return core::Network(deploy_uniform(profile, n, rng));
}

}  // namespace fvc::deploy
