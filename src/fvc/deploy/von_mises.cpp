#include "fvc/deploy/von_mises.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/geometry/angle.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {

double sample_von_mises(stats::Pcg32& rng, double mu, double kappa) {
  if (kappa < 0.0) {
    throw std::invalid_argument("sample_von_mises: kappa must be >= 0");
  }
  if (kappa == 0.0) {
    return stats::uniform_in(rng, 0.0, geom::kTwoPi);
  }
  // Best & Fisher (1979) wrapped-Cauchy envelope rejection.
  const double tau = 1.0 + std::sqrt(1.0 + 4.0 * kappa * kappa);
  const double rho = (tau - std::sqrt(2.0 * tau)) / (2.0 * kappa);
  const double r = (1.0 + rho * rho) / (2.0 * rho);
  for (int attempts = 0; attempts < 10000; ++attempts) {
    const double u1 = stats::uniform01(rng);
    const double z = std::cos(geom::kPi * u1);
    const double f = (1.0 + r * z) / (r + z);
    const double c = kappa * (r - f);
    const double u2 = stats::uniform01(rng);
    if (c * (2.0 - c) - u2 > 0.0 || std::log(c / u2) + 1.0 - c >= 0.0) {
      const double u3 = stats::uniform01(rng);
      const double sign = u3 < 0.5 ? -1.0 : 1.0;
      return geom::normalize_angle(mu + sign * std::acos(f));
    }
  }
  // Practically unreachable (acceptance rate ~ 65%+); keep a safe fallback.
  return geom::normalize_angle(mu);
}

std::vector<core::Camera> deploy_uniform_von_mises(
    const core::HeterogeneousProfile& profile, std::size_t n, stats::Pcg32& rng,
    double mu, double kappa) {
  const auto counts = profile.counts(n);
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  cameras.reserve(n);
  for (std::size_t y = 0; y < groups.size(); ++y) {
    for (std::size_t i = 0; i < counts[y]; ++i) {
      core::Camera cam;
      cam.position = {stats::uniform01(rng), stats::uniform01(rng)};
      cam.orientation = sample_von_mises(rng, mu, kappa);
      cam.radius = groups[y].radius;
      cam.fov = groups[y].fov;
      cam.group = static_cast<std::uint32_t>(y);
      cameras.push_back(cam);
    }
  }
  return cameras;
}

double circular_mean(const std::vector<double>& angles) {
  if (angles.empty()) {
    return 0.0;
  }
  double sx = 0.0;
  double sy = 0.0;
  for (double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  return geom::normalize_angle(std::atan2(sy, sx));
}

double mean_resultant_length(const std::vector<double>& angles) {
  if (angles.empty()) {
    return 0.0;
  }
  double sx = 0.0;
  double sy = 0.0;
  for (double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  const double n = static_cast<double>(angles.size());
  return std::sqrt(sx * sx + sy * sy) / n;
}

}  // namespace fvc::deploy
