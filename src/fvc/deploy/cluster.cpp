#include "fvc/deploy/cluster.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "fvc/deploy/orientation.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/torus.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {
namespace {

// Group membership by thinning, as in the Poisson deployment: one uniform
// draw selects the group by cumulative fraction.  Shared by every
// clustered generator so the (position, orientation, group) draw order
// stays uniform across families.
core::Camera make_camera(std::span<const core::CameraGroupSpec> groups,
                         geom::Vec2 position, stats::Pcg32& rng) {
  core::Camera cam;
  cam.position = position;
  cam.orientation = random_orientation(rng);
  const double u = stats::uniform01(rng);
  double acc = 0.0;
  std::size_t y = groups.size() - 1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    acc += groups[g].fraction;
    if (u < acc) {
      y = g;
      break;
    }
  }
  cam.radius = groups[y].radius;
  cam.fov = groups[y].fov;
  cam.group = static_cast<std::uint32_t>(y);
  return cam;
}

}  // namespace

void ClusterConfig::validate() const {
  if (!(parent_intensity > 0.0) || !(mean_children > 0.0) || !(spread > 0.0)) {
    throw std::invalid_argument("ClusterConfig: all parameters must be positive");
  }
}

std::vector<core::Camera> deploy_matern_cluster(const core::HeterogeneousProfile& profile,
                                                const ClusterConfig& config,
                                                stats::Pcg32& rng) {
  config.validate();
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  const std::uint64_t parents = stats::poisson(rng, config.parent_intensity);
  cameras.reserve(static_cast<std::size_t>(config.expected_count()) + 16);
  for (std::uint64_t p = 0; p < parents; ++p) {
    const geom::Vec2 centre{stats::uniform01(rng), stats::uniform01(rng)};
    const std::uint64_t children = stats::poisson(rng, config.mean_children);
    for (std::uint64_t c = 0; c < children; ++c) {
      // Uniform in the disc: r = spread * sqrt(u), angle uniform.
      const double r = config.spread * std::sqrt(stats::uniform01(rng));
      const double a = stats::uniform_in(rng, 0.0, geom::kTwoPi);
      cameras.push_back(make_camera(
          groups, geom::UnitTorus::wrap(centre + geom::Vec2::from_angle(a) * r), rng));
    }
  }
  return cameras;
}

core::Network deploy_matern_cluster_network(const core::HeterogeneousProfile& profile,
                                            const ClusterConfig& config,
                                            stats::Pcg32& rng) {
  return core::Network(deploy_matern_cluster(profile, config, rng));
}

void GaussianClusterConfig::validate() const {
  if (count == 0 || clusters == 0 || !(sigma > 0.0)) {
    throw std::invalid_argument(
        "GaussianClusterConfig: count, clusters and sigma must be positive");
  }
}

std::vector<core::Camera> deploy_gaussian_cluster(
    const core::HeterogeneousProfile& profile, const GaussianClusterConfig& config,
    stats::Pcg32& rng) {
  config.validate();
  const auto groups = profile.groups();
  std::vector<geom::Vec2> centres;
  centres.reserve(config.clusters);
  for (std::size_t k = 0; k < config.clusters; ++k) {
    centres.push_back({stats::uniform01(rng), stats::uniform01(rng)});
  }
  std::vector<core::Camera> cameras;
  cameras.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    // Round-robin dealing keeps cluster populations balanced and the total
    // exact, so differential suites see identical n across families.
    const geom::Vec2 centre = centres[i % config.clusters];
    const geom::Vec2 offset{config.sigma * stats::standard_normal(rng),
                            config.sigma * stats::standard_normal(rng)};
    cameras.push_back(make_camera(groups, geom::UnitTorus::wrap(centre + offset), rng));
  }
  return cameras;
}

core::Network deploy_gaussian_cluster_network(const core::HeterogeneousProfile& profile,
                                              const GaussianClusterConfig& config,
                                              stats::Pcg32& rng) {
  return core::Network(deploy_gaussian_cluster(profile, config, rng));
}

void StripHotspotConfig::validate() const {
  if (count == 0 || !(half_width > 0.0)) {
    throw std::invalid_argument(
        "StripHotspotConfig: count and half_width must be positive");
  }
  if (!(center >= 0.0) || !(center < 1.0)) {
    throw std::invalid_argument("StripHotspotConfig: center must be in [0, 1)");
  }
  if (!(hot_fraction >= 0.0) || !(hot_fraction <= 1.0)) {
    throw std::invalid_argument("StripHotspotConfig: hot_fraction must be in [0, 1]");
  }
}

std::vector<core::Camera> deploy_strip_hotspot(const core::HeterogeneousProfile& profile,
                                               const StripHotspotConfig& config,
                                               stats::Pcg32& rng) {
  config.validate();
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  cameras.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const double x = stats::uniform01(rng);
    double y;
    if (stats::uniform01(rng) < config.hot_fraction) {
      y = stats::uniform_in(rng, config.center - config.half_width,
                            config.center + config.half_width);
    } else {
      y = stats::uniform01(rng);
    }
    cameras.push_back(make_camera(groups, geom::UnitTorus::wrap({x, y}), rng));
  }
  return cameras;
}

core::Network deploy_strip_hotspot_network(const core::HeterogeneousProfile& profile,
                                           const StripHotspotConfig& config,
                                           stats::Pcg32& rng) {
  return core::Network(deploy_strip_hotspot(profile, config, rng));
}

}  // namespace fvc::deploy
