#include "fvc/deploy/cluster.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/deploy/orientation.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/geometry/torus.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {

void ClusterConfig::validate() const {
  if (!(parent_intensity > 0.0) || !(mean_children > 0.0) || !(spread > 0.0)) {
    throw std::invalid_argument("ClusterConfig: all parameters must be positive");
  }
}

std::vector<core::Camera> deploy_matern_cluster(const core::HeterogeneousProfile& profile,
                                                const ClusterConfig& config,
                                                stats::Pcg32& rng) {
  config.validate();
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  const std::uint64_t parents = stats::poisson(rng, config.parent_intensity);
  cameras.reserve(static_cast<std::size_t>(config.expected_count()) + 16);
  for (std::uint64_t p = 0; p < parents; ++p) {
    const geom::Vec2 centre{stats::uniform01(rng), stats::uniform01(rng)};
    const std::uint64_t children = stats::poisson(rng, config.mean_children);
    for (std::uint64_t c = 0; c < children; ++c) {
      // Uniform in the disc: r = spread * sqrt(u), angle uniform.
      const double r = config.spread * std::sqrt(stats::uniform01(rng));
      const double a = stats::uniform_in(rng, 0.0, geom::kTwoPi);
      core::Camera cam;
      cam.position = geom::UnitTorus::wrap(centre + geom::Vec2::from_angle(a) * r);
      cam.orientation = random_orientation(rng);
      // Group by thinning, as in the Poisson deployment.
      const double u = stats::uniform01(rng);
      double acc = 0.0;
      std::size_t y = groups.size() - 1;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        acc += groups[g].fraction;
        if (u < acc) {
          y = g;
          break;
        }
      }
      cam.radius = groups[y].radius;
      cam.fov = groups[y].fov;
      cam.group = static_cast<std::uint32_t>(y);
      cameras.push_back(cam);
    }
  }
  return cameras;
}

core::Network deploy_matern_cluster_network(const core::HeterogeneousProfile& profile,
                                            const ClusterConfig& config,
                                            stats::Pcg32& rng) {
  return core::Network(deploy_matern_cluster(profile, config, rng));
}

}  // namespace fvc::deploy
