/// \file cluster.hpp
/// \brief Clustered random deployments — Matern, Gaussian and strip hotspot.
///
/// Airdrops rarely produce perfectly independent positions: sensors leave
/// the aircraft in sticks and land in clumps.  The standard point-process
/// model is the Matern cluster process: parent locations form a Poisson
/// process of intensity `parents`, each parent spawns Poisson(`mean_children`)
/// sensors placed uniformly in a disc of radius `spread` around it (torus
/// wrapped).  The overall intensity is parents * mean_children; letting
/// spread -> large recovers uniform-like behaviour, spread -> 0 degenerates
/// to multi-sensor piles.  The CLUSTER bench measures how clumping wastes
/// sensing area relative to the paper's uniform assumption at equal
/// density.
///
/// Two further generators exist as adversarial inputs for the candidate
/// index (core/candidate_index.hpp): the **Gaussian cluster** (exact-count
/// heaps around a few centres, the memory-bound stress for the
/// hierarchical index — nearly all coarse tiles stay empty) and the
/// **strip hotspot** (a dense horizontal band, the worst case for the
/// row-streamed index, whose y-strips all land in a handful of slices).
/// Both take an exact `count` rather than an intensity so differential
/// suites compare identical population sizes across deployment families.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/camera_group.hpp"
#include "fvc/core/network.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// Matern cluster process parameters.
struct ClusterConfig {
  double parent_intensity = 20.0;  ///< expected number of cluster centres
  double mean_children = 10.0;     ///< expected sensors per cluster
  double spread = 0.05;            ///< cluster disc radius

  /// Expected total sensor count.
  [[nodiscard]] double expected_count() const {
    return parent_intensity * mean_children;
  }

  /// \throws std::invalid_argument unless all parameters are positive.
  void validate() const;
};

/// Deploy a Matern-clustered fleet of `profile` cameras (group membership
/// by thinning, orientations uniform — only POSITIONS are clustered).
[[nodiscard]] std::vector<core::Camera> deploy_matern_cluster(
    const core::HeterogeneousProfile& profile, const ClusterConfig& config,
    stats::Pcg32& rng);

/// As `deploy_matern_cluster`, wrapped into a Network.
[[nodiscard]] core::Network deploy_matern_cluster_network(
    const core::HeterogeneousProfile& profile, const ClusterConfig& config,
    stats::Pcg32& rng);

/// Gaussian cluster process with exact population: `clusters` centres are
/// drawn uniformly, then cameras are dealt to centres round-robin with
/// isotropic Gaussian offsets of std-dev `sigma` (torus wrapped).  With
/// small `sigma` almost the whole fleet piles into a few spots — the
/// clustered stress case for candidate-index memory bounds.
struct GaussianClusterConfig {
  std::size_t count = 200;   ///< total cameras (exact, unlike Matern)
  std::size_t clusters = 4;  ///< cluster centres, uniform on the torus
  double sigma = 0.02;       ///< std-dev of the Gaussian offset per axis

  /// \throws std::invalid_argument unless count, clusters and sigma are
  /// positive.
  void validate() const;
};

/// Deploy a Gaussian-clustered fleet of `profile` cameras (group
/// membership by thinning, orientations uniform — only POSITIONS cluster).
[[nodiscard]] std::vector<core::Camera> deploy_gaussian_cluster(
    const core::HeterogeneousProfile& profile, const GaussianClusterConfig& config,
    stats::Pcg32& rng);

/// As `deploy_gaussian_cluster`, wrapped into a Network.
[[nodiscard]] core::Network deploy_gaussian_cluster_network(
    const core::HeterogeneousProfile& profile, const GaussianClusterConfig& config,
    stats::Pcg32& rng);

/// Strip hotspot with exact population: a `hot_fraction` share of the
/// fleet lands in the horizontal band `center ± half_width` (y wrapped,
/// x uniform); the rest is uniform background.  Concentrates nearly every
/// camera into a few y-strips — the adversarial row density for the
/// row-streamed candidate index.
struct StripHotspotConfig {
  std::size_t count = 200;    ///< total cameras (exact)
  double center = 0.5;        ///< y centre of the hot band
  double half_width = 0.02;   ///< half-width of the band in y
  double hot_fraction = 0.9;  ///< share of cameras landing in the band

  /// \throws std::invalid_argument unless count and half_width are
  /// positive, center is in [0, 1) and hot_fraction is in [0, 1].
  void validate() const;
};

/// Deploy a strip-hotspot fleet of `profile` cameras (group membership by
/// thinning, orientations uniform).
[[nodiscard]] std::vector<core::Camera> deploy_strip_hotspot(
    const core::HeterogeneousProfile& profile, const StripHotspotConfig& config,
    stats::Pcg32& rng);

/// As `deploy_strip_hotspot`, wrapped into a Network.
[[nodiscard]] core::Network deploy_strip_hotspot_network(
    const core::HeterogeneousProfile& profile, const StripHotspotConfig& config,
    stats::Pcg32& rng);

}  // namespace fvc::deploy
