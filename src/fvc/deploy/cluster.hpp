/// \file cluster.hpp
/// \brief Clustered random deployment — the Matern cluster process.
///
/// Airdrops rarely produce perfectly independent positions: sensors leave
/// the aircraft in sticks and land in clumps.  The standard point-process
/// model is the Matern cluster process: parent locations form a Poisson
/// process of intensity `parents`, each parent spawns Poisson(`mean_children`)
/// sensors placed uniformly in a disc of radius `spread` around it (torus
/// wrapped).  The overall intensity is parents * mean_children; letting
/// spread -> large recovers uniform-like behaviour, spread -> 0 degenerates
/// to multi-sensor piles.  The CLUSTER bench measures how clumping wastes
/// sensing area relative to the paper's uniform assumption at equal
/// density.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/camera_group.hpp"
#include "fvc/core/network.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// Matern cluster process parameters.
struct ClusterConfig {
  double parent_intensity = 20.0;  ///< expected number of cluster centres
  double mean_children = 10.0;     ///< expected sensors per cluster
  double spread = 0.05;            ///< cluster disc radius

  /// Expected total sensor count.
  [[nodiscard]] double expected_count() const {
    return parent_intensity * mean_children;
  }

  /// \throws std::invalid_argument unless all parameters are positive.
  void validate() const;
};

/// Deploy a Matern-clustered fleet of `profile` cameras (group membership
/// by thinning, orientations uniform — only POSITIONS are clustered).
[[nodiscard]] std::vector<core::Camera> deploy_matern_cluster(
    const core::HeterogeneousProfile& profile, const ClusterConfig& config,
    stats::Pcg32& rng);

/// As `deploy_matern_cluster`, wrapped into a Network.
[[nodiscard]] core::Network deploy_matern_cluster_network(
    const core::HeterogeneousProfile& profile, const ClusterConfig& config,
    stats::Pcg32& rng);

}  // namespace fvc::deploy
