/// \file lattice.hpp
/// \brief Deterministic triangular-lattice deployment — the Wang & Cao [4]
/// style baseline (paper Section VII-C).
///
/// Sites form a triangular lattice of edge `l` on the unit torus; every
/// site hosts `per_site` cameras facing evenly spaced directions.  A fan of
/// `per_site >= ceil(2*pi/fov)` cameras makes each site effectively
/// omnidirectional, so any object within the radius of a site is covered
/// by it; full-view coverage then comes from the sites *surrounding* an
/// object: neighbouring lattice sites are spaced 60 degrees apart as seen
/// from an interior point, so the construction full-view covers the region
/// for effective angles theta >= pi/6 once the radius reaches past the
/// first lattice ring.  This is the "careful arrangement" alternative the
/// paper's random-deployment results are measured against.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/network.hpp"

namespace fvc::deploy {

/// Parameters of the lattice baseline.
struct LatticeConfig {
  double edge = 0.1;          ///< triangular-lattice edge length l
  double radius = 0.2;        ///< sensing radius of every camera
  double fov = 1.0;           ///< angle of view of every camera
  std::size_t per_site = 1;   ///< cameras per lattice site
  double orientation_offset = 0.0;  ///< rotation of the per-site fan
};

/// Sites of a triangular lattice of edge `l` on the unit torus: rows at
/// vertical spacing l*sqrt(3)/2, odd rows offset by l/2.  Row/column counts
/// are rounded so the pattern tiles the torus without seams (the realized
/// spacing may therefore be slightly below `l`).
/// \pre 0 < l <= 1
[[nodiscard]] std::vector<geom::Vec2> triangular_lattice_sites(double l);

/// Deploy the lattice baseline.
/// \throws std::invalid_argument on non-positive edge/radius/fov or zero
/// per_site.
[[nodiscard]] std::vector<core::Camera> deploy_triangular_lattice(const LatticeConfig& cfg);

/// As `deploy_triangular_lattice`, wrapped into a Network.
[[nodiscard]] core::Network deploy_triangular_lattice_network(const LatticeConfig& cfg);

/// Cameras per site that make a site omnidirectional: ceil(2*pi / fov).
/// \pre fov in (0, 2*pi]
[[nodiscard]] std::size_t per_site_for_fov(double fov);

}  // namespace fvc::deploy
