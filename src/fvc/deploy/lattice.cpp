#include "fvc/deploy/lattice.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/deploy/orientation.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::deploy {

std::vector<geom::Vec2> triangular_lattice_sites(double l) {
  if (!(l > 0.0) || l > 1.0) {
    throw std::invalid_argument("triangular_lattice_sites: edge must be in (0, 1]");
  }
  const double row_spacing_target = l * std::sqrt(3.0) / 2.0;
  const auto rows =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(1.0 / row_spacing_target)));
  const auto cols = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(1.0 / l)));
  const double dy = 1.0 / static_cast<double>(rows);
  const double dx = 1.0 / static_cast<double>(cols);
  std::vector<geom::Vec2> sites;
  sites.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double offset = (r % 2 == 0) ? 0.0 : 0.5 * dx;
    for (std::size_t c = 0; c < cols; ++c) {
      sites.push_back({offset + static_cast<double>(c) * dx,
                       (static_cast<double>(r) + 0.5) * dy});
    }
  }
  return sites;
}

std::vector<core::Camera> deploy_triangular_lattice(const LatticeConfig& cfg) {
  if (!(cfg.radius > 0.0)) {
    throw std::invalid_argument("deploy_triangular_lattice: radius must be positive");
  }
  if (!(cfg.fov > 0.0) || cfg.fov > geom::kTwoPi) {
    throw std::invalid_argument("deploy_triangular_lattice: fov must be in (0, 2*pi]");
  }
  if (cfg.per_site == 0) {
    throw std::invalid_argument("deploy_triangular_lattice: per_site must be >= 1");
  }
  const auto sites = triangular_lattice_sites(cfg.edge);
  const auto fan = evenly_spaced_orientations(cfg.per_site, cfg.orientation_offset);
  std::vector<core::Camera> cameras;
  cameras.reserve(sites.size() * cfg.per_site);
  for (const geom::Vec2& site : sites) {
    for (double orientation : fan) {
      core::Camera cam;
      cam.position = site;
      cam.orientation = orientation;
      cam.radius = cfg.radius;
      cam.fov = cfg.fov;
      cam.group = 0;
      cameras.push_back(cam);
    }
  }
  return cameras;
}

core::Network deploy_triangular_lattice_network(const LatticeConfig& cfg) {
  return core::Network(deploy_triangular_lattice(cfg));
}

std::size_t per_site_for_fov(double fov) {
  if (!(fov > 0.0) || fov > geom::kTwoPi) {
    throw std::invalid_argument("per_site_for_fov: fov must be in (0, 2*pi]");
  }
  // Same rounding rule as the sector partitions (geom/angle.hpp), so a fov
  // that divides 2*pi up to float noise yields exactly 2*pi/fov cameras.
  return geom::sector_count(geom::kTwoPi, fov);
}

}  // namespace fvc::deploy
