#include "fvc/deploy/poisson.hpp"

#include <stdexcept>

#include "fvc/deploy/orientation.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {

std::vector<core::Camera> deploy_poisson(const core::HeterogeneousProfile& profile,
                                         double density, stats::Pcg32& rng) {
  if (!(density > 0.0)) {
    throw std::invalid_argument("deploy_poisson: density must be positive");
  }
  const std::uint64_t count = stats::poisson(rng, density);
  const auto groups = profile.groups();
  std::vector<core::Camera> cameras;
  cameras.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    // Thinning: pick the group by the cumulative fractions.
    const double u = stats::uniform01(rng);
    double acc = 0.0;
    std::size_t y = groups.size() - 1;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      acc += groups[g].fraction;
      if (u < acc) {
        y = g;
        break;
      }
    }
    core::Camera cam;
    cam.position = {stats::uniform01(rng), stats::uniform01(rng)};
    cam.orientation = random_orientation(rng);
    cam.radius = groups[y].radius;
    cam.fov = groups[y].fov;
    cam.group = static_cast<std::uint32_t>(y);
    cameras.push_back(cam);
  }
  return cameras;
}

core::Network deploy_poisson_network(const core::HeterogeneousProfile& profile,
                                     double density, stats::Pcg32& rng) {
  return core::Network(deploy_poisson(profile, density, rng));
}

}  // namespace fvc::deploy
