#include "fvc/deploy/orientation.hpp"

#include <stdexcept>

#include "fvc/geometry/angle.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::deploy {

double random_orientation(stats::Pcg32& rng) {
  return stats::uniform_in(rng, 0.0, geom::kTwoPi);
}

void randomize_orientations(std::vector<core::Camera>& cameras, stats::Pcg32& rng) {
  for (core::Camera& cam : cameras) {
    cam.orientation = random_orientation(rng);
  }
}

std::vector<double> evenly_spaced_orientations(std::size_t count, double offset) {
  if (count == 0) {
    throw std::invalid_argument("evenly_spaced_orientations: count must be >= 1");
  }
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    out.push_back(geom::normalize_angle(
        offset + static_cast<double>(j) * geom::kTwoPi / static_cast<double>(count)));
  }
  return out;
}

}  // namespace fvc::deploy
