/// \file orientation.hpp
/// \brief Camera orientation assignment (paper Section II-A: orientations
/// are uniform over all directions and fixed once deployed).

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// One uniformly random orientation in [0, 2*pi).
[[nodiscard]] double random_orientation(stats::Pcg32& rng);

/// Re-randomize the orientation of every camera in `cameras`.
void randomize_orientations(std::vector<core::Camera>& cameras, stats::Pcg32& rng);

/// `count` evenly spaced directions starting at `offset`: offset + j*2*pi/count.
/// Used by the deterministic lattice baseline to face cameras evenly around
/// every site.
[[nodiscard]] std::vector<double> evenly_spaced_orientations(std::size_t count,
                                                             double offset = 0.0);

}  // namespace fvc::deploy
