/// \file von_mises.hpp
/// \brief Biased camera orientations — ablating the uniform-orientation
/// assumption of Section II-A.
///
/// The paper's CSA results hinge on orientations being uniform: the
/// orientation term contributes the clean factor phi/(2*pi) to every hit
/// probability, and viewed directions of covering sensors are uniform.
/// Real airdrops can bias orientations (wind, terrain, mounting).  The
/// standard circular distribution for such bias is the von Mises law
/// VM(mu, kappa): density proportional to exp(kappa * cos(x - mu)),
/// reducing to uniform at kappa = 0.  This module samples it (Best &
/// Fisher 1979 rejection algorithm) and deploys fleets with biased
/// orientations so the ORIENT bench can measure the coverage penalty.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/camera_group.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// One draw from the von Mises distribution VM(mu, kappa), in [0, 2*pi).
/// kappa = 0 is exactly uniform; large kappa concentrates near mu.
/// \pre kappa >= 0
[[nodiscard]] double sample_von_mises(stats::Pcg32& rng, double mu, double kappa);

/// Uniform positions with von-Mises orientations: the Section II-A model
/// with the orientation assumption knocked out.
[[nodiscard]] std::vector<core::Camera> deploy_uniform_von_mises(
    const core::HeterogeneousProfile& profile, std::size_t n, stats::Pcg32& rng,
    double mu, double kappa);

/// Circular mean direction of a sample (atan2 of the mean resultant);
/// returns 0 for an empty sample.  Used by tests and diagnostics.
[[nodiscard]] double circular_mean(const std::vector<double>& angles);

/// Mean resultant length R in [0, 1]: 0 for uniform spread, 1 for a point
/// mass.  The standard concentration statistic for circular data.
[[nodiscard]] double mean_resultant_length(const std::vector<double>& angles);

}  // namespace fvc::deploy
