/// \file uniform.hpp
/// \brief Uniform random deployment (paper Section II-A): exactly n sensors
/// placed i.i.d. uniformly on the unit torus with i.i.d. uniform
/// orientations; group y receives n_y = c_y * n sensors.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/camera_group.hpp"
#include "fvc/core/network.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::deploy {

/// Deploy exactly `n` cameras of `profile` uniformly at random.  Group
/// head-counts follow the profile's largest-remainder apportionment, so the
/// realized counts are deterministic given (profile, n).
[[nodiscard]] std::vector<core::Camera> deploy_uniform(
    const core::HeterogeneousProfile& profile, std::size_t n, stats::Pcg32& rng);

/// As `deploy_uniform`, wrapped into a query-ready Network.
[[nodiscard]] core::Network deploy_uniform_network(
    const core::HeterogeneousProfile& profile, std::size_t n, stats::Pcg32& rng);

}  // namespace fvc::deploy
