/// \file csa.hpp
/// \brief Critical sensing area (CSA) formulas — Theorems 1 and 2.
///
/// The CSA is the threshold on the weighted sensing area
/// `s_c = sum_y c_y phi_y r_y^2 / 2` separating asymptotic success from
/// asymptotic failure of a grid-coverage event (Definition 2).
///
/// Both CSAs instantiate one generic formula.  For a sector condition with
/// sector angle `w` (so `k = ceil(2*pi/w)` sectors around each point, the
/// count including the paper's remainder sector T_{k+1}), the probability
/// that one uniformly-deployed sensor of group y lands in a given sector
/// *and* covers the point is `(w/(2*pi)) * pi r_y^2 * (phi_y/(2*pi))
/// = w s_y / (2*pi)`.  Requiring every one of the k sectors of every one of
/// the m = n log n grid points to be hit with total failure mass 1 yields
///
///   s_c(n) = -(2*pi/(w*n)) * log(1 - (1 - 1/(n log n))^(1/k)).
///
/// * Necessary condition (Theorem 1): w = 2*theta, k_N = ceil(pi/theta):
///     s_Nc(n) = -(pi/(theta n)) log(1 - (1 - 1/(n log n))^(1/k_N)).
/// * Sufficient condition (Theorem 2): w = theta, k_S = ceil(2*pi/theta):
///     s_Sc(n) = -(2*pi/(theta n)) log(1 - (1 - 1/(n log n))^(1/k_S)).
///
/// At theta = pi the necessary CSA degenerates to the 1-coverage critical
/// area (log n + log log n)/n, matching the critical ESR of [18]
/// (Section VII-A); and s_Nc(n) dominates the k-coverage sufficient area
/// s_K(n) = (log n + k log log n)/n of Kumar et al. [6] (Section VII-B).

#pragma once

#include <cstddef>

namespace fvc::analysis {

/// Number of sectors in the paper's necessary condition, ceil(pi/theta)
/// (the k_N sectors of angle 2*theta plus the remainder sector collapse to
/// this single count).
/// \pre theta in (0, pi]
[[nodiscard]] std::size_t necessary_sector_count(double theta);

/// Number of sectors in the sufficient condition, ceil(2*pi/theta).
/// \pre theta in (0, pi]
[[nodiscard]] std::size_t sufficient_sector_count(double theta);

/// Generic CSA for a sector condition with sector angle `w` at population
/// size n, with m = n log n grid points (see file comment).
/// \pre n >= 3, w in (0, 2*pi]
[[nodiscard]] double csa_for_sector_condition(double n, double sector_angle);

/// Theorem 1: CSA for the necessary condition of full-view coverage.
/// \pre n >= 3, theta in (0, pi]
[[nodiscard]] double csa_necessary(double n, double theta);

/// Theorem 2: CSA for the sufficient condition of full-view coverage.
/// \pre n >= 3, theta in (0, pi]
[[nodiscard]] double csa_sufficient(double n, double theta);

/// Proposition 1/3 operating point: the s_c for which the expected number
/// of failing grid points is exp(-xi), i.e. the CSA with failure mass
/// e^-xi instead of 1.  xi = 0 recovers the CSA; larger xi permits fewer
/// expected failures and therefore demands MORE sensing area (the excess
/// is a subleading xi/n term that vanishes relative to the CSA as n grows).
/// \pre n >= 3, sector_angle in (0, 2*pi], xi >= 0
[[nodiscard]] double csa_with_failure_mass(double n, double sector_angle, double xi);

/// Leading-order expansion of the generic CSA (Section VII-B):
/// s_c(n) ~ (2*pi/(w*n)) * (log(n log n) + log k).  Used in tests and in
/// the asymptotic comparisons.
[[nodiscard]] double csa_asymptotic(double n, double sector_angle);

/// Critical sensing area for 1-coverage, (log n + log log n)/n — the
/// theta = pi degeneration of Theorem 1 (Section VII-A, eq. (19)).
/// \pre n >= 3
[[nodiscard]] double csa_one_coverage(double n);

/// Critical effective sensing radius for 1-coverage under the disk model,
/// R*(n) = sqrt((log n + log log n)/(pi n)) — Wang et al. [18],
/// quoted in Section VII-A.
/// \pre n >= 3
[[nodiscard]] double critical_esr_one_coverage(double n);

/// Sufficient sensing area for k-coverage from Kumar et al. [6]
/// (Section VII-B, eq. (21) with u(n) dropped):
/// s_K(n) = (log n + k log log n)/n.
/// \pre n >= 3, k >= 1
[[nodiscard]] double csa_k_coverage(double n, std::size_t k);

/// Numerical CSA for the k-required generalization of the sector
/// conditions (the k-full-view fault-tolerance extension): the sensing
/// area at which the expected number of grid points having FEWER than
/// `k_required` covering sensors in some sector of angle `sector_angle`
/// equals 1.  Uses the same calibration as the closed forms (which it
/// reproduces at k_required = 1, where the binomial tail is exactly the
/// (1-p)^n of Theorem 1's derivation) but evaluates the binomial sector
/// statistics exactly and inverts by bisection, since no closed form is
/// known for k >= 2.
/// \pre n >= 3, sector_angle in (0, 2*pi], k_required >= 1
[[nodiscard]] double csa_numerical(double n, double sector_angle,
                                   std::size_t k_required);

/// Numerical CSA for k-full-view coverage's necessary condition: every
/// 2*theta sector holds >= k covering sensors.  k = 1 reproduces
/// csa_necessary.
[[nodiscard]] double csa_k_full_view_necessary(double n, double theta, std::size_t k);

}  // namespace fvc::analysis
