#include "fvc/analysis/exact_theory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::analysis {

double circle_coverage_probability(std::size_t k, double arc_fraction) {
  if (!(arc_fraction > 0.0)) {
    throw std::invalid_argument("circle_coverage_probability: arc_fraction must be > 0");
  }
  if (k == 0) {
    return 0.0;
  }
  if (arc_fraction >= 1.0) {
    return 1.0;
  }
  // Stevens: sum_{j=0}^{J} (-1)^j C(k,j) (1 - j a)^{k-1}, J = min(k, floor(1/a)).
  const long double a = static_cast<long double>(arc_fraction);
  const auto j_max = std::min<std::size_t>(
      k, static_cast<std::size_t>(std::floor(1.0 / arc_fraction)));
  long double sum = 0.0L;
  long double binom = 1.0L;  // C(k, 0)
  for (std::size_t j = 0; j <= j_max; ++j) {
    const long double base = 1.0L - static_cast<long double>(j) * a;
    if (base > 0.0L) {
      const long double term =
          binom * std::pow(base, static_cast<long double>(k - 1));
      sum += (j % 2 == 0) ? term : -term;
    }
    // C(k, j+1) = C(k, j) * (k - j) / (j + 1)
    binom *= static_cast<long double>(k - j) / static_cast<long double>(j + 1);
  }
  return std::clamp(static_cast<double>(sum), 0.0, 1.0);
}

double full_view_probability_given_k(std::size_t k, double theta) {
  core::validate_theta(theta);
  return circle_coverage_probability(k, theta / geom::kPi);
}

namespace {

/// Binomial(n, p) PMF entries 0..cap with the tail mass folded into `cap`.
std::vector<double> binomial_pmf(std::size_t n, double p, std::size_t cap) {
  std::vector<double> pmf(cap + 1, 0.0);
  if (p <= 0.0 || n == 0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p >= 1.0) {
    pmf[std::min(n, cap)] = 1.0;
    return pmf;
  }
  // Recurrence from pmf(0) = (1-p)^n; stays in normal range because the
  // count distribution is concentrated (n*p is tens at most here).
  const double ratio = p / (1.0 - p);
  double value = std::exp(static_cast<double>(n) * std::log1p(-p));
  double total = 0.0;
  const std::size_t top = std::min(n, cap);
  for (std::size_t k = 0;; ++k) {
    if (k <= top) {
      pmf[k] = value;
      total += value;
    }
    if (k >= n || k >= cap) {
      break;
    }
    value *= ratio * static_cast<double>(n - k) / static_cast<double>(k + 1);
  }
  pmf[top] += std::max(0.0, 1.0 - total);  // fold the (tiny) tail
  return pmf;
}

/// Poisson(mean) PMF entries 0..cap with the tail folded into `cap`.
std::vector<double> poisson_pmf(double mean, std::size_t cap) {
  std::vector<double> pmf(cap + 1, 0.0);
  double value = std::exp(-mean);
  double total = 0.0;
  for (std::size_t k = 0; k <= cap; ++k) {
    pmf[k] = value;
    total += value;
    value *= mean / static_cast<double>(k + 1);
  }
  pmf[cap] += std::max(0.0, 1.0 - total);
  return pmf;
}

/// Truncated convolution of two PMFs with tail folding at `cap`.
std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b,
                             std::size_t cap) {
  std::vector<double> out(cap + 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t k = std::min(i + j, cap);
      out[k] += a[i] * b[j];
    }
  }
  return out;
}

std::size_t auto_cap(double mean) {
  return static_cast<std::size_t>(std::ceil(mean + 12.0 * std::sqrt(mean + 1.0) + 40.0));
}

double mix_full_view(const std::vector<double>& pmf, double theta) {
  const double a = theta / geom::kPi;
  double p = 0.0;
  for (std::size_t k = 1; k < pmf.size(); ++k) {
    if (pmf[k] > 0.0) {
      p += pmf[k] * circle_coverage_probability(k, a);
    }
  }
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

std::vector<double> covering_count_pmf_uniform(const core::HeterogeneousProfile& profile,
                                               std::size_t n, std::size_t cap) {
  const auto counts = profile.counts(n);
  const auto groups = profile.groups();
  std::vector<double> pmf(cap + 1, 0.0);
  pmf[0] = 1.0;
  for (std::size_t y = 0; y < groups.size(); ++y) {
    const double p = std::min(1.0, groups[y].sensing_area());
    pmf = convolve(pmf, binomial_pmf(counts[y], p, cap), cap);
  }
  return pmf;
}

std::vector<double> covering_count_pmf_poisson(const core::HeterogeneousProfile& profile,
                                               double n, std::size_t cap) {
  if (!(n > 0.0)) {
    throw std::invalid_argument("covering_count_pmf_poisson: n must be positive");
  }
  // Superposition of the per-group Poissons: Poisson(n * s_c).
  return poisson_pmf(n * profile.weighted_sensing_area(), cap);
}

double prob_point_full_view_uniform(const core::HeterogeneousProfile& profile,
                                    std::size_t n, double theta) {
  core::validate_theta(theta);
  if (n == 0) {
    throw std::invalid_argument("prob_point_full_view_uniform: n must be >= 1");
  }
  const double mean = static_cast<double>(n) * profile.weighted_sensing_area();
  const auto pmf = covering_count_pmf_uniform(profile, n, auto_cap(mean));
  return mix_full_view(pmf, theta);
}

double prob_point_full_view_poisson(const core::HeterogeneousProfile& profile, double n,
                                    double theta) {
  core::validate_theta(theta);
  const double mean = n * profile.weighted_sensing_area();
  const auto pmf = covering_count_pmf_poisson(profile, n, auto_cap(mean));
  return mix_full_view(pmf, theta);
}

}  // namespace fvc::analysis
