#include "fvc/analysis/asymptotics.hpp"

#include <cmath>
#include <stdexcept>

namespace fvc::analysis {

std::pair<double, double> log1m_bounds(double x) {
  if (!(x > 0.0) || !(x < 0.5)) {
    throw std::invalid_argument("log1m_bounds: x must be in (0, 1/2)");
  }
  return {-(x + (5.0 / 6.0) * x * x), -(x + 0.5 * x * x)};
}

double lemma2_ratio(double x, double y) {
  if (!(x > 0.0) || !(x < 0.5) || !(y > 0.0)) {
    throw std::invalid_argument("lemma2_ratio: need 0 < x < 1/2 and y > 0");
  }
  // (1-x)^y / e^{-xy} = exp(y*log(1-x) + x*y)
  return std::exp(y * std::log1p(-x) + x * y);
}

double csa_order_bound(double n, double xi) {
  if (!(n >= 3.0) || xi < 0.0) {
    throw std::invalid_argument("csa_order_bound: need n >= 3 and xi >= 0");
  }
  return (std::log(n) + std::log(std::log(n)) + xi) / n;
}

double proposition1_floor(double xi) {
  if (xi < 0.0) {
    throw std::invalid_argument("proposition1_floor: xi must be >= 0");
  }
  return std::exp(-xi) - std::exp(-2.0 * xi);
}

double inequality11_lhs(double m, double q) {
  if (!(m > 1.0) || !(q >= 1.0)) {
    throw std::invalid_argument("inequality11_lhs: need m > 1 and q >= 1");
  }
  const double inner = -std::expm1(std::log1p(-1.0 / m) / q);  // 1-(1-1/m)^(1/q)
  return std::pow(inner, q);
}

}  // namespace fvc::analysis
