#include "fvc/analysis/poisson_theory.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "fvc/analysis/csa.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::analysis {

namespace {
void check_mu(double mu) {
  if (mu < 0.0 || !std::isfinite(mu)) {
    throw std::invalid_argument("poisson theory: mean must be finite and >= 0");
  }
}
void check_fov(double fov) {
  if (!(fov > 0.0) || fov > geom::kTwoPi) {
    throw std::invalid_argument("poisson theory: fov must be in (0, 2*pi]");
  }
}
}  // namespace

double poisson_sector_cover_probability(double mu, double fov) {
  check_mu(mu);
  check_fov(fov);
  return -std::expm1(-mu * fov / geom::kTwoPi);
}

double poisson_sector_cover_probability_series(double mu, double fov,
                                               std::size_t truncate_at) {
  check_mu(mu);
  check_fov(fov);
  const double q = 1.0 - fov / geom::kTwoPi;  // P(one sensor has wrong orientation)
  double pois = std::exp(-mu);                // Pois(mu; 0)
  double qk = 1.0;                            // q^0
  double total = 0.0;
  for (std::size_t k = 1; k <= truncate_at; ++k) {
    pois *= mu / static_cast<double>(k);  // Pois(mu; k)
    qk *= q;                              // q^k
    total += pois * (1.0 - qk);
  }
  return total;
}

double q_necessary(const core::CameraGroupSpec& g, double n_y, double theta) {
  // Sector angle 2*theta => sector area theta * r^2.
  return poisson_sector_cover_probability(theta * n_y * g.radius * g.radius, g.fov);
}

double q_sufficient(const core::CameraGroupSpec& g, double n_y, double theta) {
  // Sector angle theta => sector area theta * r^2 / 2.
  return poisson_sector_cover_probability(0.5 * theta * n_y * g.radius * g.radius, g.fov);
}

namespace {

double prob_point(const core::HeterogeneousProfile& profile, double n, double theta,
                  bool necessary) {
  if (!(n > 0.0)) {
    throw std::invalid_argument("poisson theory: n must be positive");
  }
  double log_all_miss = 0.0;  // log prod_y (1 - Q_y)
  for (const auto& g : profile.groups()) {
    const double n_y = g.fraction * n;
    const double q = necessary ? q_necessary(g, n_y, theta) : q_sufficient(g, n_y, theta);
    if (q >= 1.0) {
      log_all_miss = -std::numeric_limits<double>::infinity();
      break;
    }
    log_all_miss += std::log1p(-q);
  }
  const double one_sector = -std::expm1(log_all_miss);  // 1 - prod (1 - Q_y)
  const auto k = necessary ? necessary_sector_count(theta) : sufficient_sector_count(theta);
  return std::pow(one_sector, static_cast<double>(k));
}

}  // namespace

double prob_point_necessary_poisson(const core::HeterogeneousProfile& profile, double n,
                                    double theta) {
  return prob_point(profile, n, theta, /*necessary=*/true);
}

double prob_point_sufficient_poisson(const core::HeterogeneousProfile& profile, double n,
                                     double theta) {
  return prob_point(profile, n, theta, /*necessary=*/false);
}

}  // namespace fvc::analysis
