#include "fvc/analysis/csa.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/geometry/angle.hpp"

namespace fvc::analysis {

namespace {

void check_n(double n) {
  if (!(n >= 3.0)) {
    throw std::invalid_argument("CSA formulas require n >= 3 (log log n must be defined)");
  }
}

void check_theta(double theta) {
  if (!(theta > 0.0) || theta > geom::kPi) {
    throw std::invalid_argument("CSA formulas require theta in (0, pi]");
  }
}

/// Sector-count rounding is single-sourced in geom (see angle.hpp): a
/// blanket epsilon subtracted before ceil undercounted ratios that sit just
/// above an integer, and disagreed with the partition's residual-sector
/// branch.  All counts here now share the partition's rule.
std::size_t ceil_ratio(double num, double den) {
  return geom::sector_count(num, den);
}

}  // namespace

std::size_t necessary_sector_count(double theta) {
  check_theta(theta);
  return ceil_ratio(geom::kPi, theta);
}

std::size_t sufficient_sector_count(double theta) {
  check_theta(theta);
  return ceil_ratio(geom::kTwoPi, theta);
}

double csa_with_failure_mass(double n, double sector_angle, double xi) {
  check_n(n);
  if (!(sector_angle > 0.0) || sector_angle > geom::kTwoPi) {
    throw std::invalid_argument("csa: sector_angle must be in (0, 2*pi]");
  }
  if (xi < 0.0) {
    throw std::invalid_argument("csa: xi must be non-negative");
  }
  const double m = n * std::log(n);
  const double k = static_cast<double>(ceil_ratio(geom::kTwoPi, sector_angle));
  const double mass = std::exp(-xi);
  // inner = 1 - (1 - e^-xi/m)^(1/k); use log1p/expm1 to keep precision when
  // mass/m is tiny (m grows like n log n).
  const double inner = -std::expm1(std::log1p(-mass / m) / k);
  return -(geom::kTwoPi / (sector_angle * n)) * std::log(inner);
}

double csa_for_sector_condition(double n, double sector_angle) {
  return csa_with_failure_mass(n, sector_angle, 0.0);
}

double csa_necessary(double n, double theta) {
  check_theta(theta);
  return csa_for_sector_condition(n, 2.0 * theta);
}

double csa_sufficient(double n, double theta) {
  check_theta(theta);
  return csa_for_sector_condition(n, theta);
}

double csa_asymptotic(double n, double sector_angle) {
  check_n(n);
  const double m = n * std::log(n);
  const double k = static_cast<double>(ceil_ratio(geom::kTwoPi, sector_angle));
  return (geom::kTwoPi / (sector_angle * n)) * (std::log(m) + std::log(k));
}

double csa_one_coverage(double n) {
  check_n(n);
  return (std::log(n) + std::log(std::log(n))) / n;
}

double critical_esr_one_coverage(double n) {
  check_n(n);
  return std::sqrt(csa_one_coverage(n) / geom::kPi);
}

double csa_k_coverage(double n, std::size_t k) {
  check_n(n);
  if (k == 0) {
    throw std::invalid_argument("csa_k_coverage: k must be >= 1");
  }
  return (std::log(n) + static_cast<double>(k) * std::log(std::log(n))) / n;
}

namespace {

/// log of the lower binomial tail P(Bin(n, p) < k) for small k, evaluated
/// stably via logs (the regime here has tiny p and k <= a few dozen).
double binomial_lower_tail(double n, double p, std::size_t k) {
  if (p <= 0.0) {
    return 1.0;
  }
  if (p >= 1.0) {
    return 0.0;
  }
  // sum_{j=0}^{k-1} exp(log C(n,j) + j log p + (n-j) log(1-p))
  double total = 0.0;
  double log_binom = 0.0;  // log C(n, 0)
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  for (std::size_t j = 0; j < k; ++j) {
    const double dj = static_cast<double>(j);
    total += std::exp(log_binom + dj * log_p + (n - dj) * log_q);
    log_binom += std::log((n - dj) / (dj + 1.0));
  }
  return std::min(total, 1.0);
}

}  // namespace

double csa_numerical(double n, double sector_angle, std::size_t k_required) {
  check_n(n);
  if (!(sector_angle > 0.0) || sector_angle > geom::kTwoPi) {
    throw std::invalid_argument("csa_numerical: sector_angle must be in (0, 2*pi]");
  }
  if (k_required == 0) {
    throw std::invalid_argument("csa_numerical: k_required must be >= 1");
  }
  const double m = n * std::log(n);
  const double k_sectors = static_cast<double>(ceil_ratio(geom::kTwoPi, sector_angle));
  // Expected failing grid points at sensing area s (decreasing in s).
  const auto expected_failures = [&](double s) {
    const double p_hit = std::min(1.0, sector_angle * s / geom::kTwoPi);
    const double sector_bad = binomial_lower_tail(n, p_hit, k_required);
    if (sector_bad >= 1.0) {
      return m;
    }
    const double point_ok = std::exp(k_sectors * std::log1p(-sector_bad));
    return m * (1.0 - point_ok);
  };
  double lo = 1e-9;
  double hi = geom::kTwoPi / sector_angle;  // p_hit = 1: every sector surely full
  if (expected_failures(hi) > 1.0) {
    throw std::runtime_error(
        "csa_numerical: calibration unreachable (n too small for this k)");
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-15 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (expected_failures(mid) > 1.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double csa_k_full_view_necessary(double n, double theta, std::size_t k) {
  check_theta(theta);
  return csa_numerical(n, 2.0 * theta, k);
}

}  // namespace fvc::analysis
