/// \file poisson_theory.hpp
/// \brief Probabilities under Poisson deployment — Theorems 3 and 4.
///
/// Under a 2-D Poisson process of density n, the number of group-y sensors
/// in a sector of area A is Poisson(n_y * A).  The probability that at
/// least one of them covers the point (orientation within phi_y/2 of the
/// point direction, probability phi_y/(2*pi) independently per sensor) is
///
///   Q_y = sum_{k>=1} Pois(mu; k) [1 - (1 - phi_y/(2*pi))^k]
///       = 1 - exp(-mu * phi_y / (2*pi))           (closed form)
///
/// with mu = n_y * (sector area).  The paper truncates the series at
/// k = n_y; we provide both the truncated series (faithful to the text) and
/// the closed form (exact limit), which the tests show agree to within the
/// truncation tail.
///
/// Necessary condition (Theorem 3): sector angle 2*theta, area theta*r_y^2,
/// so mu_N = theta n_y r_y^2 and Q_N,y's closed form is
/// 1 - exp(-theta n_y s_y / pi).  Sufficient condition (Theorem 4): sector
/// angle theta, area theta r_y^2/2, mu_S = theta n_y r_y^2 / 2.
///
///   P_N = [1 - prod_y (1 - Q_N,y)]^(k_N),  k_N = ceil(pi/theta)
///   P_S = [1 - prod_y (1 - Q_S,y)]^(k_S),  k_S = ceil(2*pi/theta)
///
/// P_N and P_S equal the expected fraction of the region meeting the
/// respective condition (Section V's expected-area argument).

#pragma once

#include <cstddef>

#include "fvc/core/camera_group.hpp"

namespace fvc::analysis {

/// Closed-form Q for one group: 1 - exp(-mu * fov/(2*pi)) where
/// mu = expected sensors of the group in the sector.
[[nodiscard]] double poisson_sector_cover_probability(double mu, double fov);

/// The paper's truncated series for Q (sum to k = truncate_at).  Matches
/// the closed form up to the Poisson tail beyond the truncation point.
[[nodiscard]] double poisson_sector_cover_probability_series(double mu, double fov,
                                                             std::size_t truncate_at);

/// Q_N,y for group y at population n: mu = theta * n_y * r_y^2.
[[nodiscard]] double q_necessary(const core::CameraGroupSpec& g, double n_y, double theta);

/// Q_S,y for group y: mu = theta * n_y * r_y^2 / 2.
[[nodiscard]] double q_sufficient(const core::CameraGroupSpec& g, double n_y, double theta);

/// Theorem 3: P_N for a heterogeneous profile at Poisson density n.
/// \pre theta in (0, pi], n > 0
[[nodiscard]] double prob_point_necessary_poisson(const core::HeterogeneousProfile& profile,
                                                  double n, double theta);

/// Theorem 4: P_S.
[[nodiscard]] double prob_point_sufficient_poisson(const core::HeterogeneousProfile& profile,
                                                   double n, double theta);

}  // namespace fvc::analysis
