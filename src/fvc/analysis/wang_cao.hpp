/// \file wang_cao.hpp
/// \brief Reconstructed baseline from Wang & Cao [4] (paper Section VII-C).
///
/// The paper compares against Wang & Cao's triangular-lattice analysis of
/// full-view coverage.  Reference [4] is closed-source for this
/// reproduction; the functions here reconstruct the two pieces the paper
/// actually uses, from the formulas quoted in Section VII-C:
///
///  1. Lemma 4.5's lattice edge length: grid full-view coverage with
///     parameters (r, phi, theta) implies area full-view coverage with
///     (r + dr, phi + dphi, theta + dtheta) when the triangular-lattice
///     edge satisfies l <= min{2 dr, r dphi, r dtheta} / sqrt(3).  The
///     quoted expression in the survey text is partially garbled
///     ("min{2Δr, Δφ min}/√(3 cot Δθ)"); we use the conservative
///     min-over-all-margins form above, which preserves the qualitative
///     behaviour (margin-proportional lattice pitch, sqrt(3) from the
///     triangular geometry) the comparison needs.  Documented as a
///     substitution in DESIGN.md.
///
///  2. A union-bound lower bound on the probability that the whole grid is
///     full-view covered under uniform deployment, in the spirit of their
///     Theorem 4.7 but with the paper's independence simplification:
///     P(all grid points meet the sufficient condition)
///       >= 1 - m * k_S * prod_y (1 - theta s_y/(2 pi))^(n_y).

#pragma once

#include <cstddef>

#include "fvc/core/camera_group.hpp"

namespace fvc::analysis {

/// Margins used in Wang & Cao's grid-to-area transfer.
struct WangCaoMargins {
  double dr = 0.0;      ///< radius slack Delta r
  double dphi = 0.0;    ///< field-of-view slack Delta phi
  double dtheta = 0.0;  ///< effective-angle slack Delta theta
};

/// Triangular-lattice edge length that makes grid coverage transfer to
/// area coverage for a sensor of radius `r` with the given margins
/// (reconstructed Lemma 4.5; see file comment).
/// \pre r > 0 and all margins > 0
[[nodiscard]] double lattice_edge_length(double r, const WangCaoMargins& margins);

/// Number of triangular-lattice grid points needed to cover the unit square
/// at edge length `l` (two points per l x (sqrt(3)/2 l) rhombus cell).
/// \pre l > 0
[[nodiscard]] std::size_t lattice_point_count(double l);

/// Union-bound lower bound on P(every one of m grid points meets the
/// sufficient condition) for n uniformly-deployed sensors (see file
/// comment).  Clamped to [0, 1].
[[nodiscard]] double grid_full_view_lower_bound(const core::HeterogeneousProfile& profile,
                                                std::size_t n, double theta, double m);

/// The n at which the Wang–Cao-style lower bound first exceeds
/// `target_probability`, by doubling + binary search over n in
/// [n_lo, n_hi].  Returns n_hi+1 when unreachable in range.  This is the
/// quantity the Section VII-C comparison contrasts with the CSA-based
/// sufficient population size.
[[nodiscard]] std::size_t min_population_for_bound(const core::HeterogeneousProfile& profile,
                                                   double theta, double target_probability,
                                                   std::size_t n_lo, std::size_t n_hi);

}  // namespace fvc::analysis
