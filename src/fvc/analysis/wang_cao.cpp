#include "fvc/analysis/wang_cao.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/analysis/csa.hpp"
#include "fvc/analysis/uniform_theory.hpp"

namespace fvc::analysis {

double lattice_edge_length(double r, const WangCaoMargins& margins) {
  if (!(r > 0.0) || !(margins.dr > 0.0) || !(margins.dphi > 0.0) ||
      !(margins.dtheta > 0.0)) {
    throw std::invalid_argument("lattice_edge_length: r and all margins must be positive");
  }
  const double m =
      std::min({2.0 * margins.dr, r * margins.dphi, r * margins.dtheta});
  return m / std::sqrt(3.0);
}

std::size_t lattice_point_count(double l) {
  if (!(l > 0.0)) {
    throw std::invalid_argument("lattice_point_count: edge length must be positive");
  }
  // Triangular lattice: one point per cell of area sqrt(3)/4 * l^2 * 2
  // (each rhombus of two triangles holds one point) => density
  // 2 / (sqrt(3) l^2) points per unit area.
  const double density = 2.0 / (std::sqrt(3.0) * l * l);
  return static_cast<std::size_t>(std::ceil(density));
}

double grid_full_view_lower_bound(const core::HeterogeneousProfile& profile, std::size_t n,
                                  double theta, double m) {
  if (!(m > 0.0)) {
    throw std::invalid_argument("grid_full_view_lower_bound: m must be positive");
  }
  const double empty = sector_empty_probability(profile, n, theta);
  const double k = static_cast<double>(sufficient_sector_count(theta));
  const double bound = 1.0 - m * k * empty;
  return std::clamp(bound, 0.0, 1.0);
}

std::size_t min_population_for_bound(const core::HeterogeneousProfile& profile, double theta,
                                     double target_probability, std::size_t n_lo,
                                     std::size_t n_hi) {
  if (!(target_probability > 0.0) || !(target_probability < 1.0)) {
    throw std::invalid_argument("min_population_for_bound: target in (0,1)");
  }
  if (n_lo < 2 || n_lo > n_hi) {
    throw std::invalid_argument("min_population_for_bound: bad range");
  }
  const auto ok = [&](std::size_t n) {
    const double m = static_cast<double>(n) * std::log(static_cast<double>(n));
    return grid_full_view_lower_bound(profile, n, theta, m) >= target_probability;
  };
  if (!ok(n_hi)) {
    return n_hi + 1;
  }
  std::size_t lo = n_lo;
  std::size_t hi = n_hi;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ok(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace fvc::analysis
