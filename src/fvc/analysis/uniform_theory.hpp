/// \file uniform_theory.hpp
/// \brief Exact finite-n probabilities under uniform deployment
/// (paper Section III, equations (2)–(4), and Section IV, (13)–(15)).
///
/// These are the quantities the asymptotic CSA proofs manipulate; computing
/// them exactly at finite n lets the benchmarks compare theory against the
/// Monte-Carlo simulator point-by-point, not just in the limit.

#pragma once

#include <cstddef>

#include "fvc/core/camera_group.hpp"

namespace fvc::analysis {

/// Probability that one sensor of group spec `g` (out of a population of n,
/// uniformly deployed) lands in a fixed sector of angle `sector_angle`
/// around a point *and* covers the point: (w/(2*pi)) * pi r^2 * (phi/(2*pi))
/// = w * s / (2*pi).  The paper's theta*s_y/pi (necessary, w = 2*theta) and
/// theta*s_y/(2*pi) (sufficient, w = theta).
[[nodiscard]] double sector_hit_probability(const core::CameraGroupSpec& g,
                                            double sector_angle);

/// Probability that NO sensor of any group hits a fixed sector:
/// prod_y (1 - w s_y/(2*pi))^(n_y).  Uses the profile's largest-remainder
/// counts for a population of n.
[[nodiscard]] double sector_empty_probability(const core::HeterogeneousProfile& profile,
                                              std::size_t n, double sector_angle);

/// Equation (2): probability that an arbitrary point FAILS the necessary
/// condition, P(F_N,P) = 1 - [1 - prod_y (1 - theta s_y/pi)^(n_y)]^(k_N).
/// (Sector independence is the paper's stated approximation.)
/// \pre theta in (0, pi]
[[nodiscard]] double point_failure_necessary(const core::HeterogeneousProfile& profile,
                                             std::size_t n, double theta);

/// Equation (13): P(F_S,P) with sector angle theta and k_S sectors.
[[nodiscard]] double point_failure_sufficient(const core::HeterogeneousProfile& profile,
                                              std::size_t n, double theta);

/// Complements: probability that an arbitrary point MEETS the condition.
/// By the expected-area argument of Section V these equal the expected
/// fraction of the region meeting the condition.
[[nodiscard]] double point_success_necessary(const core::HeterogeneousProfile& profile,
                                             std::size_t n, double theta);
[[nodiscard]] double point_success_sufficient(const core::HeterogeneousProfile& profile,
                                              std::size_t n, double theta);

/// Bonferroni bounds on the probability that at least one of m grid points
/// fails, given a per-point failure probability `pf` and independence of
/// distinct points (Lemma 3 regime):
///   upper (eq. 3):  min(1, m * pf)
///   lower (eq. 4):  m*pf - (m*pf)^2   (clamped to [0, 1])
[[nodiscard]] double grid_failure_upper_bound(double m, double pf);
[[nodiscard]] double grid_failure_lower_bound(double m, double pf);

}  // namespace fvc::analysis
