/// \file exact_theory.hpp
/// \brief EXACT per-point full-view probability — closing the gap the
/// paper leaves open.
///
/// The paper brackets the probability that a point is full-view covered
/// between its necessary (2*theta sectors) and sufficient (theta sectors)
/// conditions and notes the truth lies strictly between (Section VI-C).
/// The exact value is classical: given k sensors covering the point, their
/// viewed directions are i.i.d. uniform on the circle, each contributing a
/// safe arc of length 2*theta; the point is full-view covered iff those
/// arcs cover the circle.  Stevens (1939) solved exactly this circle-
/// covering problem:
///
///   P(k arcs of fraction a cover) =
///       sum_{j=0}^{floor(1/a)} (-1)^j C(k, j) (1 - j a)^(k-1),
///
/// here with a = 2*theta / (2*pi) = theta/pi.  Mixing over the covering
/// count K (binomial per heterogeneity group under uniform deployment,
/// Poisson under the Section V model) gives the exact per-point full-view
/// probability, which the EXACT bench shows sits between the paper's
/// bounds and matches Monte-Carlo simulation.

#pragma once

#include <cstddef>
#include <vector>

#include "fvc/core/camera_group.hpp"

namespace fvc::analysis {

/// Stevens' formula: probability that `k` arcs of length `arc_fraction`
/// (fraction of the full circle, in (0, 1]) with i.i.d. uniform positions
/// cover the circle.  k = 0 gives 0; arc_fraction >= 1 gives 1 for k >= 1.
/// Evaluated in long double with the alternating sum truncated at
/// j = floor(1/a); accurate for the k <= a few hundred this library needs.
[[nodiscard]] double circle_coverage_probability(std::size_t k, double arc_fraction);

/// P(point full-view covered | exactly k sensors cover it) with effective
/// angle theta: Stevens at arc fraction theta/pi.
/// \pre theta in (0, pi]
[[nodiscard]] double full_view_probability_given_k(std::size_t k, double theta);

/// PMF of the covering count K at an arbitrary point under UNIFORM
/// deployment of n sensors of `profile` (each group-y sensor covers the
/// point independently with probability s_y): the convolution of the
/// per-group binomials, truncated at `cap` (the tail mass beyond cap is
/// folded into the last entry).  Returns cap+1 entries.
[[nodiscard]] std::vector<double> covering_count_pmf_uniform(
    const core::HeterogeneousProfile& profile, std::size_t n, std::size_t cap);

/// PMF of K under POISSON deployment of density n: group y contributes
/// Poisson(n_y * s_y); the sum is Poisson(n * s_c).
[[nodiscard]] std::vector<double> covering_count_pmf_poisson(
    const core::HeterogeneousProfile& profile, double n, std::size_t cap);

/// Exact probability that an arbitrary point is full-view covered under
/// uniform deployment: sum_k P(K = k) * Stevens(k, theta/pi).
/// \pre theta in (0, pi], n >= 1
[[nodiscard]] double prob_point_full_view_uniform(
    const core::HeterogeneousProfile& profile, std::size_t n, double theta);

/// Exact probability under Poisson deployment of density n.
[[nodiscard]] double prob_point_full_view_poisson(
    const core::HeterogeneousProfile& profile, double n, double theta);

}  // namespace fvc::analysis
