#include "fvc/analysis/uniform_theory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/analysis/csa.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::analysis {

double sector_hit_probability(const core::CameraGroupSpec& g, double sector_angle) {
  if (!(sector_angle > 0.0) || sector_angle > geom::kTwoPi) {
    throw std::invalid_argument("sector_hit_probability: sector_angle in (0, 2*pi]");
  }
  return std::min(1.0, sector_angle * g.sensing_area() / geom::kTwoPi);
}

double sector_empty_probability(const core::HeterogeneousProfile& profile, std::size_t n,
                                double sector_angle) {
  const auto counts = profile.counts(n);
  double log_p = 0.0;
  const auto groups = profile.groups();
  for (std::size_t y = 0; y < groups.size(); ++y) {
    const double hit = sector_hit_probability(groups[y], sector_angle);
    if (hit >= 1.0) {
      return counts[y] > 0 ? 0.0 : 1.0;
    }
    log_p += static_cast<double>(counts[y]) * std::log1p(-hit);
  }
  return std::exp(log_p);
}

namespace {

double point_failure(const core::HeterogeneousProfile& profile, std::size_t n,
                     double sector_angle, std::size_t sector_count) {
  const double empty = sector_empty_probability(profile, n, sector_angle);
  // 1 - (1 - empty)^k, computed via expm1/log1p for small `empty`.
  if (empty >= 1.0) {
    return 1.0;
  }
  return -std::expm1(static_cast<double>(sector_count) * std::log1p(-empty));
}

}  // namespace

double point_failure_necessary(const core::HeterogeneousProfile& profile, std::size_t n,
                               double theta) {
  return point_failure(profile, n, 2.0 * theta, necessary_sector_count(theta));
}

double point_failure_sufficient(const core::HeterogeneousProfile& profile, std::size_t n,
                                double theta) {
  return point_failure(profile, n, theta, sufficient_sector_count(theta));
}

double point_success_necessary(const core::HeterogeneousProfile& profile, std::size_t n,
                               double theta) {
  return 1.0 - point_failure_necessary(profile, n, theta);
}

double point_success_sufficient(const core::HeterogeneousProfile& profile, std::size_t n,
                                double theta) {
  return 1.0 - point_failure_sufficient(profile, n, theta);
}

double grid_failure_upper_bound(double m, double pf) {
  if (m < 0.0 || pf < 0.0 || pf > 1.0) {
    throw std::invalid_argument("grid_failure_upper_bound: bad arguments");
  }
  return std::min(1.0, m * pf);
}

double grid_failure_lower_bound(double m, double pf) {
  if (m < 0.0 || pf < 0.0 || pf > 1.0) {
    throw std::invalid_argument("grid_failure_lower_bound: bad arguments");
  }
  const double first = m * pf;
  return std::clamp(first - first * first, 0.0, 1.0);
}

}  // namespace fvc::analysis
