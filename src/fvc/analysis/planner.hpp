/// \file planner.hpp
/// \brief Inverse network design from the CSA results (what Section VI
/// calls "direct guidance to CSN design").
///
/// The CSA theorems answer "given n and theta, how much sensing area is
/// needed?"; a deployment engineer usually asks the inverse questions:
/// what radius do my cameras need, how many cameras do I need, what quality
/// of full-view coverage (theta) can I afford.  The planner solves those by
/// inverting the closed forms (analytically where possible, by monotone
/// bisection otherwise).

#pragma once

#include <cstddef>

#include "fvc/core/camera_group.hpp"

namespace fvc::analysis {

/// Which CSA threshold a plan targets.
enum class Condition {
  kNecessary,   ///< Theorem 1 threshold — below it coverage is impossible
  kSufficient,  ///< Theorem 2 threshold — above it coverage is guaranteed
};

/// CSA for `condition` at (n, theta).
[[nodiscard]] double csa(Condition condition, double n, double theta);

/// A concrete homogeneous design meeting `margin * CSA(condition)`:
/// given the fleet's angle of view, the radius every camera needs.
/// \pre margin > 0, fov in (0, 2*pi]
[[nodiscard]] double required_radius(Condition condition, double n, double theta,
                                     double fov, double margin = 1.0);

/// Given the radius, the angle of view every camera needs; throws when even
/// a full circle (fov = 2*pi) cannot reach the target area.
[[nodiscard]] double required_fov(Condition condition, double n, double theta,
                                  double radius, double margin = 1.0);

/// Smallest n in [n_lo, n_hi] such that the profile's weighted sensing
/// area reaches `margin * CSA(condition, n, theta)`.  CSA decreases in n
/// while s_c is fixed, so this is a monotone search.  Returns n_hi + 1 when
/// no n in range suffices.
[[nodiscard]] std::size_t required_population(Condition condition,
                                              const core::HeterogeneousProfile& profile,
                                              double theta, double margin,
                                              std::size_t n_lo, std::size_t n_hi);

/// Largest theta (best full-view quality is *smallest* theta; this returns
/// the smallest theta achievable, i.e. the best quality) such that the
/// profile meets `margin * CSA(condition, n, theta)`, found by bisection on
/// theta in [theta_lo, theta_hi].  CSA is decreasing in theta
/// (s_c ~ 1/theta, Section VI-B), so feasibility is monotone.
/// Returns theta_hi when even that is infeasible... no: throws
/// std::runtime_error when the profile cannot meet the condition at
/// theta_hi (the easiest quality requested).
[[nodiscard]] double best_effective_angle(Condition condition,
                                          const core::HeterogeneousProfile& profile,
                                          double n, double margin, double theta_lo,
                                          double theta_hi);

}  // namespace fvc::analysis
