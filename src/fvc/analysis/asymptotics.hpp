/// \file asymptotics.hpp
/// \brief The elementary asymptotic lemmas used in the Theorem 1/2 proofs
/// (Lemmas 1–3), exposed so the tests can check them numerically.

#pragma once

#include <utility>

namespace fvc::analysis {

/// Lemma 1: for 0 < x < 1/2,
///   log(1-x) in ( -(x + (5/6) x^2),  -(x + (1/2) x^2) ).
/// Returns {lower, upper} of that open interval.
/// \pre 0 < x < 1/2
[[nodiscard]] std::pair<double, double> log1m_bounds(double x);

/// Lemma 2's quantities: returns the ratio (1-x)^y / exp(-x*y).  Lemma 2
/// states the ratio tends to 1 whenever x^2*y -> 0.
/// \pre 0 < x < 1/2, y > 0
[[nodiscard]] double lemma2_ratio(double x, double y);

/// Lemma 3's scaling: evaluates the CSA-order expression
/// (log n + log log n + xi)/n that upper-bounds s_c in the proof.
/// \pre n >= 3, xi >= 0
[[nodiscard]] double csa_order_bound(double n, double xi);

/// Proposition 1's failure-probability floor e^-xi - e^-2xi for the
/// deployment operating exactly at the xi-mass point.  Maximised at
/// xi = log 2 with value 1/4.
/// \pre xi >= 0
[[nodiscard]] double proposition1_floor(double xi);

/// Inequality (11): checks (1 - (1 - 1/m)^(1/q))^q <= 1/m numerically, the
/// inequality used in the Proposition 2 and Section VII-B derivations.
/// Returns the left-hand side; callers compare against 1/m.
/// \pre m > 1, q >= 1
[[nodiscard]] double inequality11_lhs(double m, double q);

}  // namespace fvc::analysis
