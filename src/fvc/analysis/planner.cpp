#include "fvc/analysis/planner.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/analysis/csa.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::analysis {

double csa(Condition condition, double n, double theta) {
  switch (condition) {
    case Condition::kNecessary:
      return csa_necessary(n, theta);
    case Condition::kSufficient:
      return csa_sufficient(n, theta);
  }
  throw std::logic_error("csa: unknown condition");
}

double required_radius(Condition condition, double n, double theta, double fov,
                       double margin) {
  if (!(margin > 0.0)) {
    throw std::invalid_argument("required_radius: margin must be positive");
  }
  if (!(fov > 0.0) || fov > geom::kTwoPi) {
    throw std::invalid_argument("required_radius: fov must be in (0, 2*pi]");
  }
  const double target_area = margin * csa(condition, n, theta);
  // s = fov * r^2 / 2 = target  =>  r = sqrt(2 * target / fov)
  return std::sqrt(2.0 * target_area / fov);
}

double required_fov(Condition condition, double n, double theta, double radius,
                    double margin) {
  if (!(margin > 0.0)) {
    throw std::invalid_argument("required_fov: margin must be positive");
  }
  if (!(radius > 0.0)) {
    throw std::invalid_argument("required_fov: radius must be positive");
  }
  const double target_area = margin * csa(condition, n, theta);
  const double fov = 2.0 * target_area / (radius * radius);
  if (fov > geom::kTwoPi) {
    throw std::runtime_error(
        "required_fov: even an omnidirectional camera of this radius cannot reach the "
        "target sensing area; increase the radius or the population");
  }
  return fov;
}

std::size_t required_population(Condition condition,
                                const core::HeterogeneousProfile& profile, double theta,
                                double margin, std::size_t n_lo, std::size_t n_hi) {
  if (!(margin > 0.0)) {
    throw std::invalid_argument("required_population: margin must be positive");
  }
  if (n_lo < 3 || n_lo > n_hi) {
    throw std::invalid_argument("required_population: need 3 <= n_lo <= n_hi");
  }
  const double s_c = profile.weighted_sensing_area();
  const auto feasible = [&](std::size_t n) {
    return s_c >= margin * csa(condition, static_cast<double>(n), theta);
  };
  if (!feasible(n_hi)) {
    return n_hi + 1;
  }
  std::size_t lo = n_lo;
  std::size_t hi = n_hi;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double best_effective_angle(Condition condition, const core::HeterogeneousProfile& profile,
                            double n, double margin, double theta_lo, double theta_hi) {
  if (!(margin > 0.0)) {
    throw std::invalid_argument("best_effective_angle: margin must be positive");
  }
  if (!(theta_lo > 0.0) || !(theta_lo < theta_hi) || theta_hi > geom::kPi) {
    throw std::invalid_argument("best_effective_angle: need 0 < theta_lo < theta_hi <= pi");
  }
  const double s_c = profile.weighted_sensing_area();
  const auto feasible = [&](double theta) {
    return s_c >= margin * csa(condition, n, theta);
  };
  if (!feasible(theta_hi)) {
    throw std::runtime_error(
        "best_effective_angle: profile cannot meet the condition even at theta_hi");
  }
  if (feasible(theta_lo)) {
    return theta_lo;
  }
  double lo = theta_lo;  // infeasible
  double hi = theta_hi;  // feasible
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace fvc::analysis
