#include "fvc/obs/prom_export.hpp"

#include <cinttypes>
#include <cstdio>

#include "fvc/obs/json_export.hpp"

namespace fvc::obs {

namespace {

void add_header(std::string& out, const char* name, const char* help,
                const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void add_sample_u64(std::string& out, const char* name, const char* labels,
                    std::uint64_t value) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s%s %" PRIu64 "\n", name, labels, value);
  out += buf;
}

void add_sample_f64(std::string& out, const char* name, const char* labels,
                    double value) {
  char buf[224];
  std::snprintf(buf, sizeof buf, "%s%s %.17g\n", name, labels, value);
  out += buf;
}

}  // namespace

std::string to_prometheus(const ServeStatsSnapshot& snap) {
  std::string out;
  out.reserve(4096);

  add_header(out, "fvc_serve_uptime_seconds", "Daemon uptime.", "gauge");
  add_sample_f64(out, "fvc_serve_uptime_seconds", "",
                 static_cast<double>(snap.uptime_ms) / 1000.0);

  add_header(out, "fvc_serve_connections_total",
             "Client connections accepted since start.", "counter");
  add_sample_u64(out, "fvc_serve_connections_total", "", snap.connections_total);

  add_header(out, "fvc_serve_connections_active",
             "Client connections currently open.", "gauge");
  add_sample_u64(out, "fvc_serve_connections_active", "", snap.connections_active);

  add_header(out, "fvc_serve_in_flight_requests",
             "Requests currently being handled.", "gauge");
  add_sample_u64(out, "fvc_serve_in_flight_requests", "", snap.in_flight);

  add_header(out, "fvc_serve_requests_total",
             "Requests answered since start, by request type.", "counter");
  for (std::size_t t = 0; t < kReqTypeCount; ++t) {
    char labels[64];
    std::snprintf(labels, sizeof labels, "{type=\"%s\"}",
                  req_type_name(static_cast<ReqType>(t)));
    add_sample_u64(out, "fvc_serve_requests_total", labels, snap.types[t].count);
  }

  add_header(out, "fvc_serve_errors_total",
             "ok:false responses sent since start.", "counter");
  add_sample_u64(out, "fvc_serve_errors_total", "", snap.errors_total);

  add_header(out, "fvc_serve_bytes_total",
             "Wire bytes moved since start, including framing.", "counter");
  add_sample_u64(out, "fvc_serve_bytes_total", "{direction=\"in\"}", snap.bytes_in);
  add_sample_u64(out, "fvc_serve_bytes_total", "{direction=\"out\"}", snap.bytes_out);

  add_header(out, "fvc_serve_request_latency_microseconds",
             "Interpolated request latency quantiles, by request type.",
             "gauge");
  static constexpr const char* kQuantiles[] = {"0.5", "0.9", "0.99"};
  for (std::size_t t = 0; t < kReqTypeCount; ++t) {
    const ServeStatsSnapshot::PerType& pt = snap.types[t];
    if (pt.count == 0) {
      continue;  // an all-zero quantile for an idle type would read as "instant"
    }
    const double values[] = {pt.p50_us, pt.p90_us, pt.p99_us};
    for (std::size_t q = 0; q < 3; ++q) {
      char labels[96];
      std::snprintf(labels, sizeof labels, "{type=\"%s\",quantile=\"%s\"}",
                    req_type_name(static_cast<ReqType>(t)), kQuantiles[q]);
      add_sample_f64(out, "fvc_serve_request_latency_microseconds", labels,
                     values[q]);
    }
  }

  add_header(out, "fvc_serve_cache_events_total",
             "Tile-cache events since start, by kind.", "counter");
  add_sample_u64(out, "fvc_serve_cache_events_total", "{event=\"hit\"}",
                 snap.cache.hits);
  add_sample_u64(out, "fvc_serve_cache_events_total", "{event=\"miss\"}",
                 snap.cache.misses);
  add_sample_u64(out, "fvc_serve_cache_events_total", "{event=\"evict\"}",
                 snap.cache.evictions);
  add_sample_u64(out, "fvc_serve_cache_events_total", "{event=\"carry\"}",
                 snap.cache.carried_forward);

  add_header(out, "fvc_serve_cache_tiles", "Tile-cache entries resident.",
             "gauge");
  add_sample_u64(out, "fvc_serve_cache_tiles", "", snap.cache.tiles);

  add_header(out, "fvc_serve_cache_capacity_tiles",
             "Tile-cache entry capacity.", "gauge");
  add_sample_u64(out, "fvc_serve_cache_capacity_tiles", "", snap.cache.capacity);

  add_header(out, "fvc_serve_cache_bytes",
             "Approximate tile-cache resident bytes.", "gauge");
  add_sample_u64(out, "fvc_serve_cache_bytes", "", snap.cache.bytes);

  add_header(out, "fvc_serve_watchdog_stalls_total",
             "Stalls flagged by the watchdog since start.", "counter");
  add_sample_u64(out, "fvc_serve_watchdog_stalls_total", "", snap.stalls);

  add_header(out, "fvc_serve_batched_requests_total",
             "Point requests coalesced into shared kernel rounds.", "counter");
  add_sample_u64(out, "fvc_serve_batched_requests_total", "",
                 snap.batched_requests);

  add_header(out, "fvc_serve_batch_rounds_total",
             "Kernel rounds run by the point batcher.", "counter");
  add_sample_u64(out, "fvc_serve_batch_rounds_total", "", snap.batch_rounds);

  add_header(out, "fvc_serve_batch_points_total",
             "Points evaluated through the batcher.", "counter");
  add_sample_u64(out, "fvc_serve_batch_points_total", "", snap.batch_points);

  add_header(out, "fvc_serve_batch_size_points",
             "Interpolated points-per-round quantiles of the batcher.",
             "gauge");
  if (snap.batch_rounds > 0) {
    const double sizes[] = {snap.batch_size_p50, snap.batch_size_p90,
                            snap.batch_size_p99};
    for (std::size_t q = 0; q < 3; ++q) {
      char labels[64];
      std::snprintf(labels, sizeof labels, "{quantile=\"%s\"}", kQuantiles[q]);
      add_sample_f64(out, "fvc_serve_batch_size_points", labels, sizes[q]);
    }
  }

  return out;
}

void write_prometheus_file_atomic(const std::string& path,
                                  const ServeStatsSnapshot& snap) {
  write_text_file_atomic(path, to_prometheus(snap));
}

}  // namespace fvc::obs
