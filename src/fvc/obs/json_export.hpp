/// \file json_export.hpp
/// \brief Versioned JSON export of a RunMetrics tree.
///
/// Layout (schema "fvc.metrics/1"):
///
/// ```json
/// {
///   "schema": "fvc.metrics/1",
///   "labels": { "command": "simulate", ... },
///   "root": {
///     "name": "run",
///     "elapsed_ns": 123456,
///     "counters": { "trials_run": 40 },
///     "histograms": {
///       "candidates_per_point": { "total": 4096, "buckets": [ ... 16 ... ] }
///     },
///     "children": [ { ...same shape... } ]
///   }
/// }
/// ```
///
/// Stability rules: keys never disappear or change meaning within a
/// schema version; counters/histograms/children may gain entries.  Output
/// is deterministic for a given tree (maps iterate sorted, children keep
/// insertion order), numbers are emitted with enough digits to round-trip
/// doubles, and strings are escaped per RFC 8259.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "fvc/obs/run_metrics.hpp"

namespace fvc::obs {

/// Write the document to a stream (pretty-printed, 2-space indent).
void write_json(std::ostream& os, const RunMetrics& metrics);

/// Convenience: the same document as a string.
[[nodiscard]] std::string to_json(const RunMetrics& metrics);

/// Write the document to a file; throws std::runtime_error when the file
/// cannot be opened or the write fails.
void write_json_file(const std::string& path, const RunMetrics& metrics);

/// Atomically replace `path` with `content`: write `path + ".tmp"`, then
/// rename over the target (the checkpoint idiom), so a reader polling the
/// file never sees a torn document.  \throws std::runtime_error on any
/// open/write/rename failure.
void write_text_file_atomic(const std::string& path, std::string_view content);

/// Atomic variant of write_json_file (tmp + rename), for periodic
/// flushes of a live process (`fvc serve --metrics-every`).
void write_json_file_atomic(const std::string& path, const RunMetrics& metrics);

}  // namespace fvc::obs
