#include "fvc/obs/json_export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fvc::obs {

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest representation that round-trips the double; JSON has no
/// Inf/NaN, so those degrade to 0 (counters never produce them).
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void indent(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) {
    os << "  ";
  }
}

void write_node(std::ostream& os, const MetricsNode& node, int depth) {
  indent(os, depth);
  os << "{\n";
  indent(os, depth + 1);
  os << "\"name\": ";
  write_escaped(os, node.name());
  os << ",\n";
  indent(os, depth + 1);
  os << "\"elapsed_ns\": " << node.elapsed_ns() << ",\n";

  indent(os, depth + 1);
  os << "\"counters\": {";
  bool first = true;
  for (const auto& [key, value] : node.counters()) {
    os << (first ? "\n" : ",\n");
    first = false;
    indent(os, depth + 2);
    write_escaped(os, key);
    os << ": ";
    write_number(os, value);
  }
  if (!first) {
    os << "\n";
    indent(os, depth + 1);
  }
  os << "},\n";

  indent(os, depth + 1);
  os << "\"histograms\": {";
  first = true;
  for (const auto& [key, hist] : node.histograms()) {
    os << (first ? "\n" : ",\n");
    first = false;
    indent(os, depth + 2);
    write_escaped(os, key);
    os << ": { \"total\": " << hist.total() << ", \"buckets\": [";
    for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
      os << (b == 0 ? "" : ", ") << hist.bucket(b);
    }
    os << "] }";
  }
  if (!first) {
    os << "\n";
    indent(os, depth + 1);
  }
  os << "},\n";

  indent(os, depth + 1);
  os << "\"children\": [";
  first = true;
  for (const auto& c : node.children()) {
    os << (first ? "\n" : ",\n");
    first = false;
    write_node(os, *c, depth + 2);
  }
  if (!first) {
    os << "\n";
    indent(os, depth + 1);
  }
  os << "]\n";
  indent(os, depth);
  os << "}";
}

}  // namespace

void write_json(std::ostream& os, const RunMetrics& metrics) {
  os << "{\n  \"schema\": ";
  write_escaped(os, RunMetrics::kSchema);
  os << ",\n  \"labels\": {";
  bool first = true;
  for (const auto& [key, value] : metrics.labels()) {
    os << (first ? "\n" : ",\n");
    first = false;
    indent(os, 2);
    write_escaped(os, key);
    os << ": ";
    write_escaped(os, value);
  }
  if (!first) {
    os << "\n  ";
  }
  os << "},\n  \"root\":\n";
  write_node(os, metrics.root(), 1);
  os << "\n}\n";
}

std::string to_json(const RunMetrics& metrics) {
  std::ostringstream ss;
  write_json(ss, metrics);
  return ss.str();
}

void write_json_file(const std::string& path, const RunMetrics& metrics) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_json_file: cannot open " + path);
  }
  write_json(os, metrics);
  if (!os) {
    throw std::runtime_error("write_json_file: write failed for " + path);
  }
}

void write_text_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("write_text_file_atomic: cannot open " + tmp);
    }
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!os) {
      throw std::runtime_error("write_text_file_atomic: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("write_text_file_atomic: rename failed for " + path);
  }
}

void write_json_file_atomic(const std::string& path, const RunMetrics& metrics) {
  write_text_file_atomic(path, to_json(metrics));
}

}  // namespace fvc::obs
