/// \file prom_export.hpp
/// \brief Prometheus text-exposition export of a ServeStatsSnapshot.
///
/// Emitted for `fvc serve --prom <path> --prom-every <ms>`: the daemon
/// periodically renders its telemetry snapshot in the Prometheus text
/// format (version 0.0.4 — `# HELP` / `# TYPE` comments followed by
/// sample lines) and atomically replaces the file, so a node-exporter
/// textfile collector or any scraper tailing the path always reads a
/// complete document.
///
/// Name mapping from `fvc.serve_stats/1` (see ARCHITECTURE.md):
///   fvc_serve_uptime_seconds                     gauge
///   fvc_serve_connections_total                  counter
///   fvc_serve_connections_active                 gauge
///   fvc_serve_in_flight_requests                 gauge
///   fvc_serve_requests_total{type=...}           counter (one per ReqType)
///   fvc_serve_errors_total                       counter
///   fvc_serve_bytes_total{direction="in"|"out"}  counter
///   fvc_serve_request_latency_microseconds{type,quantile}  gauge
///   fvc_serve_cache_events_total{event=...}      counter
///   fvc_serve_cache_tiles / _cache_capacity_tiles / _cache_bytes  gauge
///   fvc_serve_watchdog_stalls_total              counter
/// Quantile samples are emitted only for types that have seen traffic
/// (an all-zero quantile for an idle type would read as "instant").

#pragma once

#include <string>

#include "fvc/obs/serve_stats.hpp"

namespace fvc::obs {

/// Render `snap` in the Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const ServeStatsSnapshot& snap);

/// Render and atomically write (tmp + rename) to `path`.
/// \throws std::runtime_error on any open/write/rename failure.
void write_prometheus_file_atomic(const std::string& path,
                                  const ServeStatsSnapshot& snap);

}  // namespace fvc::obs
