/// \file serve_stats.hpp
/// \brief Live telemetry registry for the query daemon.
///
/// `ServeStats` is the rolling-stats plane behind the wire-level `stats`
/// verb, the Prometheus file exporter, and `fvc top`.  It follows the
/// same sharding discipline as the engine's metrics (metrics.hpp): the
/// hot path touches only *per-connection* state — one `Recorder` shard
/// per client thread, every field a relaxed `std::atomic` — and a
/// snapshot merges the shards element-wise on demand.  There is no lock
/// on the request path; the registry mutex guards only shard creation,
/// the delta baseline, and nothing a handler thread ever takes.
///
/// Consistency contract of a snapshot:
///   - per-request-type counts are *derived from* the latency histogram
///     totals (one source of truth), so `requests_total` always equals
///     the sum of the per-type counts — no torn "total without type";
///   - counters are monotone across snapshots (shards outlive their
///     connections; closing a client never forgets its traffic);
///   - relaxed loads may lag a concurrent writer by a few events, but
///     every value read is a value that was actually written — there
///     are no mixed-word reads (all fields are single 64-bit atomics).
///
/// The cache counters are a *mirror*: `api::Session` (a layer above
/// obs) is not thread-safe, so the serve loop republishes the tile-cache
/// stats into plain atomics here after each request, while it still
/// holds the session mutex.  Exporters then read the mirror without
/// touching the session.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>

#include "fvc/obs/metrics.hpp"

namespace fvc::obs {

/// Request classes tracked by the daemon.  `kOther` absorbs anything the
/// classifier cannot name (unknown ops, unparseable bodies) so every
/// request lands in exactly one class.
enum class ReqType : std::uint8_t {
  kPoint = 0,
  kRegion,
  kWhatIf,
  kInfo,
  kStats,
  kBatch,  ///< the `points` wire verb (client-side batched points)
  kOther,
};
inline constexpr std::size_t kReqTypeCount = 7;

/// Wire/export name of a request type ("point", "region", ...).
/// NUL-terminated literal, safe for printf-family formatting.
[[nodiscard]] const char* req_type_name(ReqType type);

/// Tile-cache counters republished into the registry's atomic mirror.
struct CacheMirror {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t carried_forward = 0;
  std::uint64_t tiles = 0;     ///< entries resident
  std::uint64_t capacity = 0;  ///< entry capacity
  std::uint64_t bytes = 0;     ///< approximate resident bytes
};

/// One merged, internally-consistent view of the registry.
struct ServeStatsSnapshot {
  std::uint64_t uptime_ms = 0;

  std::uint64_t connections_total = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t in_flight = 0;

  /// Per-type merged latency histograms (microseconds) and the
  /// percentiles derived from them.  `count` == `latency.total()`.
  struct PerType {
    std::uint64_t count = 0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
    LogHistogram latency;
  };
  std::array<PerType, kReqTypeCount> types{};

  std::uint64_t requests_total = 0;  ///< sum of per-type counts
  std::uint64_t errors_total = 0;    ///< ok:false responses sent
  std::uint64_t bytes_in = 0;        ///< request bytes incl. framing
  std::uint64_t bytes_out = 0;       ///< response bytes incl. framing

  CacheMirror cache;
  std::uint64_t stalls = 0;  ///< watchdog stalls flagged

  /// Group-commit batching counters (server-side coalescing of point
  /// work into single kernel rounds; see api/batch.hpp).
  std::uint64_t batched_requests = 0;  ///< requests coalesced into shared rounds
  std::uint64_t batch_rounds = 0;      ///< kernel rounds run by the batcher
  std::uint64_t batch_points = 0;      ///< points evaluated through the batcher
  double batch_size_p50 = 0.0;         ///< points per round percentiles
  double batch_size_p90 = 0.0;
  double batch_size_p99 = 0.0;
  LogHistogram batch_size;  ///< points per round

  /// Deltas since the previous baseline-advancing snapshot (the `stats`
  /// verb advances the baseline; file exporters do not).  On the first
  /// snapshot the deltas equal the totals and `delta_ms` the uptime.
  std::uint64_t delta_ms = 0;
  std::array<std::uint64_t, kReqTypeCount> delta_counts{};
  std::uint64_t delta_requests = 0;
  std::uint64_t delta_errors = 0;
  std::uint64_t delta_bytes_in = 0;
  std::uint64_t delta_bytes_out = 0;
};

/// Telemetry registry for one daemon run.  Thread-safe as documented
/// per method; designed so handler threads only ever touch their own
/// `Recorder` and a handful of registry-level atomics.
class ServeStats {
 public:
  /// Per-connection shard.  All fields relaxed atomics: the owning
  /// handler thread is the only writer, snapshots the only other
  /// reader.  Obtained from `make_recorder()`; never freed before the
  /// registry (shards outlive their connections so counters stay
  /// monotone).
  class Recorder {
   public:
    /// Record one completed request: its class, wire latency in
    /// microseconds, bytes moved each way (including framing), and
    /// whether the response was ok:false.
    void record(ReqType type, std::uint64_t latency_us, std::uint64_t bytes_in,
                std::uint64_t bytes_out, bool error);

   private:
    friend class ServeStats;
    Recorder() = default;

    std::array<std::array<std::atomic<std::uint64_t>, LogHistogram::kBuckets>,
               kReqTypeCount>
        latency_buckets_{};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
    std::atomic<std::uint64_t> errors_{0};
  };

  ServeStats();

  /// Create the shard for a new connection and count it opened.
  /// Takes the registry mutex (connection setup, not the hot path).
  /// The reference stays valid for the registry's lifetime.
  [[nodiscard]] Recorder& make_recorder();

  /// Count a connection closed (shard stays; counters stay monotone).
  void connection_closed();

  /// In-flight request gauge, bumped around the handler call.
  void request_started();
  void request_finished();

  /// Install the watchdog-stall reader (e.g. `Watchdog::stalls_flagged`).
  /// Call before serving; the snapshot invokes it when set.
  void set_stall_source(std::function<std::uint64_t()> source);

  /// Republish tile-cache counters into the atomic mirror.  Called by
  /// the serve loop while it holds the session mutex; exporters read
  /// the mirror lock-free.
  void note_cache(const CacheMirror& cache);

  /// Record one batcher kernel round: `requests` waiters answered with
  /// `points` points in a single session pass.  `batched_requests`
  /// advances only for rounds that actually coalesced (requests >= 2) —
  /// the straight-through single-waiter path is not a batch.  Called by
  /// whichever handler thread led the round (registry-level atomics, no
  /// shard).
  void note_batch(std::uint64_t requests, std::uint64_t points);

  /// Merge all shards into one consistent snapshot.  When
  /// `advance_baseline` is set the registry's delta baseline moves to
  /// this snapshot (the `stats` verb advances; file exporters pass
  /// false so they never perturb a poller's deltas).
  [[nodiscard]] ServeStatsSnapshot snapshot(bool advance_baseline);

  /// Registry birth time (monotonic_ns), the uptime origin.
  [[nodiscard]] std::uint64_t start_ns() const { return start_ns_; }

 private:
  const std::uint64_t start_ns_;

  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> in_flight_{0};

  std::array<std::atomic<std::uint64_t>, 7> cache_mirror_{};

  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> batch_rounds_{0};
  std::atomic<std::uint64_t> batch_points_{0};
  std::array<std::atomic<std::uint64_t>, LogHistogram::kBuckets>
      batch_size_buckets_{};

  std::function<std::uint64_t()> stall_source_;

  /// Guards shard creation and the delta baseline only.
  std::mutex mutex_;
  std::list<std::unique_ptr<Recorder>> shards_;

  /// Delta baseline: totals at the last baseline-advancing snapshot.
  struct Baseline {
    std::uint64_t ns = 0;
    std::array<std::uint64_t, kReqTypeCount> counts{};
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };
  Baseline baseline_;
};

}  // namespace fvc::obs
