#include "fvc/obs/trace.hpp"

#include <algorithm>
#include <bit>

namespace fvc::obs {

namespace detail {

std::atomic<TraceSession*> g_trace_session{nullptr};
std::atomic<std::uint64_t> g_trace_generation{0};

namespace {

/// Per-thread ring cache.  The generation stamp ties the cached pointer to
/// one install(): any install/uninstall bumps the generation, so a stale
/// pointer into a torn-down session is never dereferenced — the cache
/// re-registers against the current session instead.
struct RingCache {
  TraceRing* ring = nullptr;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local RingCache t_ring_cache;

}  // namespace

void emit(const char* name, TraceCategory category, TracePhase phase,
          const char* arg1_name, std::uint64_t arg1, const char* arg2_name,
          std::uint64_t arg2) {
  TraceSession* const session = g_trace_session.load(std::memory_order_acquire);
  if (session == nullptr) {
    return;  // raced an uninstall between the call site's check and here
  }
  const std::uint64_t generation = g_trace_generation.load(std::memory_order_acquire);
  RingCache& cache = t_ring_cache;
  if (cache.ring == nullptr || cache.generation != generation) {
    cache.ring = &session->ring_for_current_thread();
    cache.generation = generation;
  }
  TraceEvent ev;
  ev.name = name;
  ev.arg1_name = arg1_name;
  ev.arg2_name = arg2_name;
  ev.ts_ns = monotonic_ns();
  ev.arg1 = arg1;
  ev.arg2 = arg2;
  ev.category = category;
  ev.phase = phase;
  cache.ring->push(ev);
}

}  // namespace detail

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid) : tid_(tid) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 8));
  slots_.resize(cap);
  mask_ = cap - 1;
}

TraceRing::DrainResult TraceRing::drain_into(std::vector<TraceEvent>& out) {
  DrainResult res;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t from = tail_;
  const auto cap = static_cast<std::uint64_t>(slots_.size());
  if (head - from > cap) {
    // The writer lapped the consumer: everything older than one full ring
    // below head is gone.
    res.evicted += head - from - cap;
    from = head - cap;
  }
  for (std::uint64_t seq = from; seq < head; ++seq) {
    TraceEvent ev = slots_[seq & mask_];
    // A slot is torn only if the writer wrapped past it *while* we copied:
    // re-reading head after the copy detects that (the writer publishes
    // with release order, so a head that still covers seq proves the slot
    // held a fully-written event when we read it).
    if (head_.load(std::memory_order_acquire) > seq + cap) {
      ++res.evicted;
      continue;
    }
    out.push_back(ev);
    ++res.drained;
  }
  tail_ = head;
  return res;
}

bool TraceRing::last_event(TraceEvent& out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (head == 0) {
    return false;
  }
  const std::uint64_t seq = head - 1;
  out = slots_[seq & mask_];
  // Discard if the writer lapped the slot mid-copy (same tear rule as
  // drain_into).
  return head_.load(std::memory_order_acquire) <=
         seq + static_cast<std::uint64_t>(slots_.size());
}

TraceSession::TraceSession(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(ring_capacity, 8)) {}

TraceSession::~TraceSession() {
  uninstall();
}

TraceSession* TraceSession::current() {
  return detail::g_trace_session.load(std::memory_order_acquire);
}

void TraceSession::install() {
  detail::g_trace_session.store(this, std::memory_order_release);
  detail::g_trace_generation.fetch_add(1, std::memory_order_acq_rel);
}

void TraceSession::uninstall() {
  if (detail::g_trace_session.load(std::memory_order_acquire) == this) {
    detail::g_trace_session.store(nullptr, std::memory_order_release);
    detail::g_trace_generation.fetch_add(1, std::memory_order_acq_rel);
  }
}

TraceRing& TraceSession::ring_for_current_thread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<TraceRing>(
      ring_capacity_, static_cast<std::uint32_t>(rings_.size() + 1)));
  return *rings_.back();
}

TraceSession::Drained TraceSession::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Drained d;
  d.threads = rings_.size();
  for (const std::unique_ptr<TraceRing>& ring : rings_) {
    const TraceRing::DrainResult r = ring->drain_into(d.events);
    d.evicted += r.evicted;
  }
  // Rings were appended in tid order, so a stable sort keeps each thread's
  // emit order for same-timestamp events (begin/end nesting survives).
  std::stable_sort(d.events.begin(), d.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return d;
}

std::vector<TraceSession::ThreadState> TraceSession::thread_states() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadState> states;
  states.reserve(rings_.size());
  for (const std::unique_ptr<TraceRing>& ring : rings_) {
    ThreadState st;
    st.tid = ring->tid();
    st.produced = ring->produced();
    st.has_last = ring->last_event(st.last);
    states.push_back(st);
  }
  return states;
}

}  // namespace fvc::obs
