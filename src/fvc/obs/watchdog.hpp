/// \file watchdog.hpp
/// \brief Stall detection for long-running sweeps.
///
/// A `Watchdog` owns a monitor thread that watches a heartbeat fed by the
/// run's `ProgressFn`.  When the heartbeat stops advancing for longer than
/// the configured deadline the watchdog flags a stall exactly once per
/// quiet period: it emits a `watchdog.stall` trace instant, prints a
/// diagnostic (last progress seen, per-thread trace state from the
/// installed `TraceSession`, if any) to the configured stream, invokes the
/// optional `on_stall` callback, and — when asked — requests cooperative
/// stop on the run's `CancellationToken`.  New progress re-arms the
/// detector, so a run that stalls, recovers, and stalls again is reported
/// twice.
///
/// The watchdog never blocks the traced code: `note_progress` is two
/// relaxed atomic stores, and all reporting happens on the monitor thread.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "fvc/obs/cancellation.hpp"
#include "fvc/obs/trace.hpp"

namespace fvc::obs {

/// Everything the watchdog knows at the moment it flags a stall.
struct StallReport {
  std::uint64_t stalled_for_ms = 0;  ///< quiet time when flagged
  std::size_t last_done = 0;         ///< last ProgressFn done value (0 if none)
  std::size_t last_total = 0;        ///< last ProgressFn total value (0 if none)
  /// Per-thread trace snapshots from the installed session; empty when no
  /// session is installed or tracing is compiled out.
  std::vector<TraceSession::ThreadState> threads;
};

struct WatchdogConfig {
  std::uint64_t stall_timeout_ms = 30000;  ///< quiet period that counts as a stall
  std::uint64_t poll_interval_ms = 100;    ///< monitor wake cadence
  CancellationToken* cancel = nullptr;     ///< token to stop on stall (optional)
  bool request_stop_on_stall = false;      ///< stop the run when flagged?
  std::ostream* diagnostics = nullptr;     ///< stall report sink; nullptr = std::cerr
  std::function<void(const StallReport&)> on_stall;  ///< test/driver hook
};

/// Monitor-thread stall detector.  Construction starts the monitor;
/// destruction (or `stop()`) joins it.  `progress_fn()` adapts the
/// heartbeat to the `ProgressFn` plumbing that sweeps already carry.
class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config);
  ~Watchdog();  ///< stops the monitor thread

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Heartbeat: callable from any thread, wait-free.
  void note_progress(std::size_t done, std::size_t total);

  /// A ProgressFn forwarding to note_progress (safe to copy; must not
  /// outlive the watchdog).
  [[nodiscard]] ProgressFn progress_fn();

  /// Stalls flagged so far (monotone; re-armed stalls count again).
  [[nodiscard]] std::uint64_t stalls_flagged() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Join the monitor thread early; idempotent.
  void stop();

 private:
  void monitor_loop();
  void flag_stall(std::uint64_t quiet_ms);

  WatchdogConfig config_;
  std::atomic<std::uint64_t> heartbeat_ns_;
  std::atomic<std::uint64_t> last_done_{0};
  std::atomic<std::uint64_t> last_total_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mutex_
  std::thread monitor_;
};

}  // namespace fvc::obs
