#include "fvc/obs/serve_stats.hpp"

namespace fvc::obs {

const char* req_type_name(ReqType type) {
  switch (type) {
    case ReqType::kPoint:
      return "point";
    case ReqType::kRegion:
      return "region";
    case ReqType::kWhatIf:
      return "what_if";
    case ReqType::kInfo:
      return "info";
    case ReqType::kStats:
      return "stats";
    case ReqType::kBatch:
      return "batch";
    case ReqType::kOther:
      break;
  }
  return "other";
}

void ServeStats::Recorder::record(ReqType type, std::uint64_t latency_us,
                                  std::uint64_t bytes_in, std::uint64_t bytes_out,
                                  bool error) {
  auto& buckets = latency_buckets_[static_cast<std::size_t>(type)];
  buckets[LogHistogram::bucket_of(latency_us)].fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(bytes_in, std::memory_order_relaxed);
  bytes_out_.fetch_add(bytes_out, std::memory_order_relaxed);
  if (error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

ServeStats::ServeStats() : start_ns_(monotonic_ns()) { baseline_.ns = start_ns_; }

ServeStats::Recorder& ServeStats::make_recorder() {
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::unique_ptr<Recorder>(new Recorder()));
  connections_total_.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  return *shards_.back();
}

void ServeStats::connection_closed() {
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void ServeStats::request_started() {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void ServeStats::request_finished() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void ServeStats::set_stall_source(std::function<std::uint64_t()> source) {
  stall_source_ = std::move(source);
}

void ServeStats::note_cache(const CacheMirror& cache) {
  cache_mirror_[0].store(cache.hits, std::memory_order_relaxed);
  cache_mirror_[1].store(cache.misses, std::memory_order_relaxed);
  cache_mirror_[2].store(cache.evictions, std::memory_order_relaxed);
  cache_mirror_[3].store(cache.carried_forward, std::memory_order_relaxed);
  cache_mirror_[4].store(cache.tiles, std::memory_order_relaxed);
  cache_mirror_[5].store(cache.capacity, std::memory_order_relaxed);
  cache_mirror_[6].store(cache.bytes, std::memory_order_relaxed);
}

void ServeStats::note_batch(std::uint64_t requests, std::uint64_t points) {
  if (requests >= 2) {
    batched_requests_.fetch_add(requests, std::memory_order_relaxed);
  }
  batch_rounds_.fetch_add(1, std::memory_order_relaxed);
  batch_points_.fetch_add(points, std::memory_order_relaxed);
  batch_size_buckets_[LogHistogram::bucket_of(points)].fetch_add(
      1, std::memory_order_relaxed);
}

ServeStatsSnapshot ServeStats::snapshot(bool advance_baseline) {
  ServeStatsSnapshot snap;
  const std::uint64_t now = monotonic_ns();
  snap.uptime_ms = (now - start_ns_) / 1'000'000;
  snap.connections_total = connections_total_.load(std::memory_order_relaxed);
  snap.connections_active = connections_active_.load(std::memory_order_relaxed);
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  snap.cache.hits = cache_mirror_[0].load(std::memory_order_relaxed);
  snap.cache.misses = cache_mirror_[1].load(std::memory_order_relaxed);
  snap.cache.evictions = cache_mirror_[2].load(std::memory_order_relaxed);
  snap.cache.carried_forward = cache_mirror_[3].load(std::memory_order_relaxed);
  snap.cache.tiles = cache_mirror_[4].load(std::memory_order_relaxed);
  snap.cache.capacity = cache_mirror_[5].load(std::memory_order_relaxed);
  snap.cache.bytes = cache_mirror_[6].load(std::memory_order_relaxed);
  if (stall_source_) {
    snap.stalls = stall_source_();
  }
  snap.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  snap.batch_rounds = batch_rounds_.load(std::memory_order_relaxed);
  snap.batch_points = batch_points_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
    snap.batch_size.add_to_bucket(
        b, batch_size_buckets_[b].load(std::memory_order_relaxed));
  }
  snap.batch_size_p50 = snap.batch_size.percentile(0.50);
  snap.batch_size_p90 = snap.batch_size.percentile(0.90);
  snap.batch_size_p99 = snap.batch_size.percentile(0.99);

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Recorder>& shard : shards_) {
    for (std::size_t t = 0; t < kReqTypeCount; ++t) {
      for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
        snap.types[t].latency.add_to_bucket(
            b, shard->latency_buckets_[t][b].load(std::memory_order_relaxed));
      }
    }
    snap.bytes_in += shard->bytes_in_.load(std::memory_order_relaxed);
    snap.bytes_out += shard->bytes_out_.load(std::memory_order_relaxed);
    snap.errors_total += shard->errors_.load(std::memory_order_relaxed);
  }
  for (std::size_t t = 0; t < kReqTypeCount; ++t) {
    ServeStatsSnapshot::PerType& pt = snap.types[t];
    pt.count = pt.latency.total();  // counts derive from the histogram
    pt.p50_us = pt.latency.percentile(0.50);
    pt.p90_us = pt.latency.percentile(0.90);
    pt.p99_us = pt.latency.percentile(0.99);
    snap.requests_total += pt.count;
  }

  snap.delta_ms = (now - baseline_.ns) / 1'000'000;
  for (std::size_t t = 0; t < kReqTypeCount; ++t) {
    snap.delta_counts[t] = snap.types[t].count - baseline_.counts[t];
  }
  snap.delta_requests = snap.requests_total - baseline_.requests;
  snap.delta_errors = snap.errors_total - baseline_.errors;
  snap.delta_bytes_in = snap.bytes_in - baseline_.bytes_in;
  snap.delta_bytes_out = snap.bytes_out - baseline_.bytes_out;
  if (advance_baseline) {
    baseline_.ns = now;
    for (std::size_t t = 0; t < kReqTypeCount; ++t) {
      baseline_.counts[t] = snap.types[t].count;
    }
    baseline_.requests = snap.requests_total;
    baseline_.errors = snap.errors_total;
    baseline_.bytes_in = snap.bytes_in;
    baseline_.bytes_out = snap.bytes_out;
  }
  return snap;
}

}  // namespace fvc::obs
