/// \file metrics.hpp
/// \brief Observability primitives: log-bucketed histograms and wall clocks.
///
/// `fvc::obs` is the feedback loop behind the "as fast as the hardware
/// allows" goal: counters, timers and hierarchical spans that the engine
/// layers (core::GridEvalEngine, sim::parallel_for_blocked, the Monte-Carlo
/// estimators) fill in when a caller asks for metrics, and that the CLI
/// exports as one schema-versioned JSON document per run (`--metrics`).
///
/// Cost model: every recording site is gated on a pointer (or, for
/// template call sites, on the compile-time-checked `NullSink` of
/// sink.hpp), so a run without metrics pays one predictable branch per
/// *batch* of work — never per candidate — and produces bit-identical
/// results.  The primitives here have no internal synchronization; the
/// engine idiom is per-worker (or per-row / per-trial slot) instances
/// merged deterministically by the caller, exactly like the result slots
/// of sim::parallel_for_blocked.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace fvc::obs {

/// Monotonic wall-clock nanoseconds (steady clock).  The single time
/// source of the subsystem, wrapped so instrumented code never includes
/// <chrono> in a hot header.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Histogram with log2 buckets: bucket b counts samples in [2^(b-1), 2^b)
/// (bucket 0 counts zeros and ones, the last bucket is open-ended).
/// Sixteen buckets cover counts up to 32768, far beyond any per-point
/// candidate list; merge is element-wise, so per-worker histograms reduce
/// deterministically.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 16;

  void add(std::uint64_t value) { ++buckets_[bucket_of(value)]; }
  /// Bulk-add `count` samples directly into bucket `b` — the merge
  /// primitive for external (e.g. atomic-sharded) bucket arrays.
  void add_to_bucket(std::size_t b, std::uint64_t count) { buckets_.at(b) += count; }
  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : buckets_) {
      t += c;
    }
    return t;
  }
  [[nodiscard]] bool empty() const { return total() == 0; }

  /// Lower edge of bucket b (0, 2, 4, 8, ..., 2^(kBuckets-1)).
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << b;
  }

  /// Exclusive upper edge of bucket b (2, 4, 8, ...).  The last bucket is
  /// open-ended; for interpolation purposes it is treated as one doubling
  /// wide (hi = 2 * lo), which keeps percentile() finite and monotone.
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) {
    return std::uint64_t{1} << (b + 1);
  }

  /// Interpolated percentile estimate for p in [0, 1] (clamped).  With N
  /// samples the target rank is p * N; the estimate walks the cumulative
  /// counts to the bucket containing that rank and interpolates linearly
  /// across the bucket's [lo, hi) span — so a single sample in [2, 4)
  /// reports p50 = 3.0, and samples landing exactly on bucket edges
  /// resolve to positions inside their own bucket, never a neighbour's.
  /// An empty histogram reports 0 for every p.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    std::size_t b = 0;
    while (value > 1 && b + 1 < kBuckets) {
      value >>= 1;
      ++b;
    }
    return b;
  }

  [[nodiscard]] bool operator==(const LogHistogram&) const = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Min/mean/max accumulator for durations (or any nonnegative samples).
/// Merge-able, so per-trial times reduce across workers.
class DurationStats {
 public:
  void add(std::uint64_t ns) {
    if (count_ == 0 || ns < min_) {
      min_ = ns;
    }
    if (count_ == 0 || ns > max_) {
      max_ = ns;
    }
    sum_ += ns;
    ++count_;
  }
  void merge(const DurationStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (count_ == 0 || other.max_ > max_) {
      max_ = other.max_;
    }
    sum_ += other.sum_;
    count_ += other.count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

 private:
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace fvc::obs
