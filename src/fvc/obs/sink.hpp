/// \file sink.hpp
/// \brief The sink model: where instrumented code writes its events.
///
/// Two call-site styles, one contract:
///
/// * **Runtime-gated** sites take a `MetricsNode*` (or a counters-struct
///   pointer) that is null when metrics are off.  The disabled cost is one
///   pointer test per batch of work — the style used by the engine hot
///   paths, where the pointer test is hoisted out of the per-candidate
///   loops.
/// * **Template-gated** sites take any type satisfying `MetricSink`.
///   Passing `NullSink` makes every recording call an empty inline
///   function, so the instrumentation compiles away entirely — the
///   compile-time-checked no-op sink.  `NodeSink` is the live counterpart
///   writing into a `MetricsNode`.
///
/// The static_asserts at the bottom are the compile-time check: both
/// sinks are guaranteed to satisfy the concept, so a template call site
/// constrained on `MetricSink` accepts either and cannot silently drop a
/// recording method.

#pragma once

#include <concepts>
#include <cstdint>
#include <string_view>
#include <type_traits>

#include "fvc/obs/run_metrics.hpp"

namespace fvc::obs {

/// Anything instrumented code can record into.
template <typename S>
concept MetricSink = requires(S s, std::string_view name, double v, std::uint64_t u) {
  { s.add(name, v) } -> std::same_as<void>;
  { s.add_elapsed_ns(u) } -> std::same_as<void>;
  { s.observe(name, u) } -> std::same_as<void>;
  { S::kEnabled } -> std::convertible_to<bool>;
};

/// The disabled sink: every method is an empty inline no-op and
/// `kEnabled` lets call sites `if constexpr` away even the argument
/// computation.
struct NullSink {
  static constexpr bool kEnabled = false;
  void add(std::string_view, double) {}
  void add_elapsed_ns(std::uint64_t) {}
  void observe(std::string_view, std::uint64_t) {}
};

/// The live sink: records into one MetricsNode (`observe` feeds the
/// node's histogram of the same name).
class NodeSink {
 public:
  static constexpr bool kEnabled = true;
  explicit NodeSink(MetricsNode& node) : node_(&node) {}
  void add(std::string_view name, double v) { node_->add(name, v); }
  void add_elapsed_ns(std::uint64_t ns) { node_->add_elapsed_ns(ns); }
  void observe(std::string_view name, std::uint64_t value) {
    node_->histogram(name).add(value);
  }

 private:
  MetricsNode* node_;
};

static_assert(MetricSink<NullSink>, "NullSink must satisfy the sink contract");
static_assert(MetricSink<NodeSink>, "NodeSink must satisfy the sink contract");
static_assert(std::is_empty_v<NullSink>, "NullSink must stay stateless (zero cost)");

}  // namespace fvc::obs
