/// \file cancellation.hpp
/// \brief Cooperative cancellation and progress reporting for long runs.
///
/// Long sweeps (thousands of Monte-Carlo trials) need two things the
/// result types cannot carry: a way for the driver to say "stop now" and
/// a way for the engine to say "t of N done".  Both are cooperative —
/// workers poll the token between trials (never mid-kernel), so
/// cancellation cannot corrupt per-slot results, and a cancelled run
/// yields an estimate over exactly the trials that completed.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace fvc::obs {

/// A cooperative stop flag.  `request_stop` may be called from any thread
/// (a signal handler trampoline, a watchdog, a test); workers poll
/// `stop_requested` at batch boundaries.
class CancellationToken {
 public:
  void request_stop() { stopped_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stopped_{false};
};

/// Progress callback: (work items completed, total work items).  Invoked
/// from the coordinating code under a mutex, so implementations need not
/// be thread-safe; they must be fast (they sit between trials).
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

}  // namespace fvc::obs
