#include "fvc/obs/watchdog.hpp"

#include <chrono>
#include <iostream>

#include "fvc/obs/trace_export.hpp"

namespace fvc::obs {

Watchdog::Watchdog(WatchdogConfig config) : config_(std::move(config)) {
  heartbeat_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  stop();
}

void Watchdog::note_progress(std::size_t done, std::size_t total) {
  last_done_.store(done, std::memory_order_relaxed);
  last_total_.store(total, std::memory_order_relaxed);
  heartbeat_ns_.store(monotonic_ns(), std::memory_order_relaxed);
}

ProgressFn Watchdog::progress_fn() {
  return [this](std::size_t done, std::size_t total) {
    note_progress(done, total);
  };
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) {
    monitor_.join();
  }
}

void Watchdog::monitor_loop() {
  const auto poll = std::chrono::milliseconds(
      config_.poll_interval_ms == 0 ? 1 : config_.poll_interval_ms);
  // Armed while the current quiet period has not been flagged yet; any
  // heartbeat newer than the flagged one re-arms.
  std::uint64_t flagged_at_heartbeat = ~std::uint64_t{0};
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, poll, [this] { return stop_requested_; });
    if (stop_requested_) {
      break;
    }
    const std::uint64_t beat = heartbeat_ns_.load(std::memory_order_relaxed);
    const std::uint64_t now = monotonic_ns();
    const std::uint64_t quiet_ms = now > beat ? (now - beat) / 1'000'000 : 0;
    if (quiet_ms < config_.stall_timeout_ms) {
      flagged_at_heartbeat = ~std::uint64_t{0};
      continue;
    }
    if (flagged_at_heartbeat == beat) {
      continue;  // already reported this quiet period
    }
    flagged_at_heartbeat = beat;
    lock.unlock();
    flag_stall(quiet_ms);
    lock.lock();
  }
}

void Watchdog::flag_stall(std::uint64_t quiet_ms) {
  stalls_.fetch_add(1, std::memory_order_relaxed);

  StallReport report;
  report.stalled_for_ms = quiet_ms;
  report.last_done = static_cast<std::size_t>(last_done_.load(std::memory_order_relaxed));
  report.last_total = static_cast<std::size_t>(last_total_.load(std::memory_order_relaxed));
  if (TraceSession* session = TraceSession::current()) {
    report.threads = session->thread_states();
  }

  trace_instant("watchdog.stall", TraceCategory::kWatchdog, "stalled_for_ms",
                quiet_ms);

  std::ostream& os = config_.diagnostics != nullptr ? *config_.diagnostics : std::cerr;
  os << "fvc watchdog: no progress for " << quiet_ms << " ms (last "
     << report.last_done << "/" << report.last_total << " done)";
  if (report.threads.empty()) {
    os << "; no trace session installed\n";
  } else {
    os << "\n";
    for (const TraceSession::ThreadState& st : report.threads) {
      os << "  thread " << st.tid << ": " << st.produced << " events";
      if (st.has_last && st.last.name != nullptr) {
        os << ", last \"" << st.last.name << "\" ("
           << trace_category_name(st.last.category) << ")";
      }
      os << "\n";
    }
  }
  os.flush();

  if (config_.on_stall) {
    config_.on_stall(report);
  }
  if (config_.request_stop_on_stall && config_.cancel != nullptr) {
    config_.cancel->request_stop();
    trace_instant("watchdog.requested_stop", TraceCategory::kWatchdog);
  }
}

}  // namespace fvc::obs
