/// \file run_metrics.hpp
/// \brief The RunMetrics tree: named nodes holding counters, histograms
/// and elapsed time, built up by RAII spans and merged deterministically.
///
/// One `RunMetrics` describes one run (one CLI invocation, one bench
/// record).  Its nodes form a tree mirroring the call structure: the CLI
/// layer opens a span per stage ("deploy", "trials", "render"), the sim
/// layer hangs engine/pool nodes underneath, and the JSON exporter walks
/// the tree.  Nodes are NOT thread-safe: concurrent code records into
/// per-worker (or per-slot) nodes and merges them on the coordinating
/// thread, which keeps exported totals independent of scheduling — the
/// same slot-merge idiom the Monte-Carlo engine uses for results.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fvc/obs/metrics.hpp"

namespace fvc::obs {

/// One node of the metrics tree.
class MetricsNode {
 public:
  explicit MetricsNode(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Counters: doubles keyed by name (counts, byte totals, ratios).
  void add(std::string_view counter, double delta) { counters_[std::string(counter)] += delta; }
  void set(std::string_view counter, double value) { counters_[std::string(counter)] = value; }
  [[nodiscard]] bool has_counter(std::string_view counter) const {
    return counters_.find(std::string(counter)) != counters_.end();
  }
  [[nodiscard]] double counter(std::string_view counter) const {
    const auto it = counters_.find(std::string(counter));
    return it == counters_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, double>& counters() const { return counters_; }

  /// Histograms: find-or-create by name.
  [[nodiscard]] LogHistogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }
  [[nodiscard]] const LogHistogram* find_histogram(std::string_view name) const {
    const auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  /// Children: find-or-create by name, preserving first-insertion order
  /// (so exported documents are stable across runs).
  [[nodiscard]] MetricsNode& child(std::string_view name);
  [[nodiscard]] const MetricsNode* find_child(std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<MetricsNode>>& children() const {
    return children_;
  }

  /// Elapsed wall time attributed to this node (by Span, or directly).
  void add_elapsed_ns(std::uint64_t ns) { elapsed_ns_ += ns; }
  [[nodiscard]] std::uint64_t elapsed_ns() const { return elapsed_ns_; }

  /// Recursive structural merge: counters and elapsed add, histograms
  /// merge, children merge by name (created when absent).
  void merge(const MetricsNode& other);

 private:
  std::string name_;
  std::uint64_t elapsed_ns_ = 0;
  std::map<std::string, double> counters_;
  std::map<std::string, LogHistogram> histograms_;
  std::vector<std::unique_ptr<MetricsNode>> children_;
};

/// RAII span: attributes the wall time between construction and
/// destruction to a node.  Spans on child nodes nest naturally — a parent
/// span open across its children's spans yields the monotonic nesting
/// invariant (sum of child elapsed <= parent elapsed) that the schema
/// test enforces.
class Span {
 public:
  explicit Span(MetricsNode& node) : node_(&node), start_ns_(monotonic_ns()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Close the span early (idempotent).
  void stop() {
    if (node_ != nullptr) {
      node_->add_elapsed_ns(monotonic_ns() - start_ns_);
      node_ = nullptr;
    }
  }

 private:
  MetricsNode* node_;
  std::uint64_t start_ns_;
};

/// The whole-run document: a schema identifier, flat string labels
/// (command name, flag values), and the root span tree.
class RunMetrics {
 public:
  /// Version of the exported JSON layout.  Bump when keys move or change
  /// meaning; additions are backward-compatible and do not bump.
  static constexpr std::string_view kSchema = "fvc.metrics/1";

  RunMetrics() : root_("run") {}

  [[nodiscard]] MetricsNode& root() { return root_; }
  [[nodiscard]] const MetricsNode& root() const { return root_; }

  void set_label(std::string_view key, std::string_view value) {
    labels_[std::string(key)] = std::string(value);
  }
  [[nodiscard]] const std::map<std::string, std::string>& labels() const { return labels_; }

  /// Fold another run's document into this one: the trees merge
  /// structurally (see MetricsNode::merge) and the other run's labels fill
  /// in keys this run lacks — keys present in both keep THIS run's value,
  /// so a merge of shard documents keeps the merger's identity labels
  /// while still adopting shard-only annotations.
  void merge(const RunMetrics& other) {
    root_.merge(other.root_);
    for (const auto& [key, value] : other.labels()) {
      labels_.emplace(key, value);
    }
  }

 private:
  MetricsNode root_;
  std::map<std::string, std::string> labels_;
};

}  // namespace fvc::obs
