/// \file trace_export.hpp
/// \brief Chrome-trace-format rendering of a drained trace timeline.
///
/// Renders a `TraceSession::Drained` as the Chrome trace-event JSON object
/// format — loadable in Perfetto (https://ui.perfetto.dev) and
/// chrome://tracing.  Layout:
///
/// ```json
/// {
///   "displayTimeUnit": "ms",
///   "otherData": { "schema": "fvc.trace/1", "threads": 2, "evicted": 0,
///                  "...labels..." : "..." },
///   "traceEvents": [
///     { "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
///       "args": { "name": "fvc_sim" } },
///     { "name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
///       "args": { "name": "fvc thread 1" } },
///     { "name": "trial", "cat": "trial", "ph": "B", "pid": 1, "tid": 1,
///       "ts": 12.345, "args": { "index": 7 } },
///     { "name": "trial", "cat": "trial", "ph": "E", ... },
///     { "name": "trials_done", "ph": "C", "ts": ...,
///       "args": { "trials_done": 8 } },
///     { "name": "watchdog.stall", "ph": "i", "s": "g", ... }
///   ]
/// }
/// ```
///
/// Timestamps are microseconds (the Chrome trace unit) with nanosecond
/// fractions, rebased to the earliest drained event so timelines start at
/// zero.  Stability rules mirror fvc.metrics/1: keys never change meaning
/// within a schema version; events and otherData entries may be added.

#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "fvc/obs/trace.hpp"

namespace fvc::obs {

/// Version tag written into otherData.schema.
inline constexpr std::string_view kTraceSchema = "fvc.trace/1";

/// Stable lower-case Chrome-trace category ("cat") name of a category.
[[nodiscard]] std::string_view trace_category_name(TraceCategory category);

/// Document-level context of one exported trace.
struct TraceExportMeta {
  std::string process_name = "fvc";  ///< rendered as the process_name metadata
  /// Free-form labels copied into otherData next to schema/threads/evicted
  /// (command name, flag values — same idea as RunMetrics labels).
  std::map<std::string, std::string> labels;
};

/// Write the Chrome-trace JSON document for one drained timeline.
void write_chrome_trace(std::ostream& os, const TraceSession::Drained& drained,
                        const TraceExportMeta& meta = {});

/// The same document as a string.
[[nodiscard]] std::string to_chrome_trace(const TraceSession::Drained& drained,
                                          const TraceExportMeta& meta = {});

/// Write the document to a file; throws std::runtime_error when the file
/// cannot be opened or the write fails.
void write_chrome_trace_file(const std::string& path,
                             const TraceSession::Drained& drained,
                             const TraceExportMeta& meta = {});

}  // namespace fvc::obs
