#include "fvc/obs/run_metrics.hpp"

namespace fvc::obs {

MetricsNode& MetricsNode::child(std::string_view name) {
  for (const std::unique_ptr<MetricsNode>& c : children_) {
    if (c->name_ == name) {
      return *c;
    }
  }
  children_.push_back(std::make_unique<MetricsNode>(std::string(name)));
  return *children_.back();
}

const MetricsNode* MetricsNode::find_child(std::string_view name) const {
  for (const std::unique_ptr<MetricsNode>& c : children_) {
    if (c->name_ == name) {
      return c.get();
    }
  }
  return nullptr;
}

void MetricsNode::merge(const MetricsNode& other) {
  elapsed_ns_ += other.elapsed_ns_;
  for (const auto& [key, value] : other.counters_) {
    counters_[key] += value;
  }
  for (const auto& [key, hist] : other.histograms_) {
    histograms_[key].merge(hist);
  }
  for (const std::unique_ptr<MetricsNode>& c : other.children_) {
    child(c->name_).merge(*c);
  }
}

}  // namespace fvc::obs
