#include "fvc/obs/metrics.hpp"

#include <algorithm>
#include <chrono>

namespace fvc::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double LogHistogram::percentile(double p) const {
  const std::uint64_t n = total();
  if (n == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const auto count = static_cast<double>(buckets_[b]);
    if (count == 0.0) {
      continue;
    }
    if (cumulative + count >= target) {
      // target falls inside bucket b: interpolate across its span.  At
      // p == 0 (target == 0) the first occupied bucket reports its lower
      // edge; at p == 1 the last occupied bucket reports its upper edge.
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double frac = (target - cumulative) / count;
      return lo + frac * (hi - lo);
    }
    cumulative += count;
  }
  // Unreachable for a consistent histogram (cumulative reaches n >= target),
  // but keep a defined answer: the top edge of the last occupied bucket.
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (buckets_[b] != 0) {
      return static_cast<double>(bucket_hi(b));
    }
  }
  return 0.0;
}

}  // namespace fvc::obs
