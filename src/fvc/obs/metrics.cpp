#include "fvc/obs/metrics.hpp"

#include <chrono>

namespace fvc::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace fvc::obs
