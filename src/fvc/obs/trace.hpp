/// \file trace.hpp
/// \brief Event tracing: per-thread lock-free ring buffers behind a
/// process-wide session.
///
/// The metrics tree (run_metrics.hpp) answers *how much*; this layer
/// answers *when*.  Instrumented code emits `TraceEvent`s — begin/end
/// slices, instants and counter samples stamped with a steady-clock
/// nanosecond timestamp and a small thread id — into a fixed-capacity
/// ring buffer owned by the emitting thread.  A `TraceSession` registers
/// the rings and drains them into one timeline that trace_export.hpp
/// renders as Chrome-trace JSON (loadable in Perfetto or
/// chrome://tracing).
///
/// Cost model, mirroring the sink model of sink.hpp:
///
/// * **Compiled out** (`FVC_TRACE_DISABLED`, set by `-DFVC_TRACING=OFF`):
///   every emit function and `TraceScope` below is an empty inline stub,
///   so instrumented translation units contain no trace code at all —
///   the hot path is bit- and cost-identical to an uninstrumented build
///   (CI asserts the hot-path TUs carry no trace symbols).
/// * **Compiled in, no session installed**: one relaxed atomic load and
///   a predictable branch per *event site* — and event sites are per
///   batch of work (a task, a trial, a whole-grid scan), never per
///   candidate or per grid point.
/// * **Session installed**: one ring-buffer store per event.  The writer
///   never blocks and never allocates after its ring exists; when the
///   ring wraps, the oldest events are evicted and accounted for at
///   drain time.
///
/// Concurrency contract: each ring has exactly one writer (its owning
/// thread).  `TraceSession::drain` may run concurrently with writers —
/// it discards events that wrapped mid-copy instead of tearing — but the
/// session must outlive every writer's last emit: uninstall (and join
/// worker threads) before destroying the session.  Tracing never touches
/// the arithmetic of instrumented code; traced results are bit-identical
/// to untraced runs.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fvc/obs/metrics.hpp"

namespace fvc::obs {

/// Which subsystem emitted the event; exported as the Chrome-trace "cat"
/// field so timelines can be filtered per layer.
enum class TraceCategory : std::uint8_t {
  kEngine,    ///< core::GridEvalEngine (builds, whole-grid scans)
  kPool,      ///< sim::parallel_for_blocked (workers, blocks, queue waits)
  kTrial,     ///< Monte-Carlo trials and estimates
  kScan,      ///< sweeps, phase scans, threshold searches
  kWatchdog,  ///< stall detection
  kCli,       ///< command dispatch
};
inline constexpr std::size_t kTraceCategoryCount = 6;

/// Chrome-trace phase of the event.
enum class TracePhase : std::uint8_t {
  kBegin,    ///< "B": a slice opens on this thread
  kEnd,      ///< "E": the innermost open slice closes
  kInstant,  ///< "i": a point-in-time marker
  kCounter,  ///< "C": a sampled counter value (in arg1)
};

/// One trace event.  `name` (and the arg names) must point to storage
/// that outlives the session — string literals in practice — so emitting
/// never copies or allocates; the exporter reads them at drain time.
struct TraceEvent {
  const char* name = nullptr;
  const char* arg1_name = nullptr;  ///< nullptr = no argument
  const char* arg2_name = nullptr;
  std::uint64_t ts_ns = 0;  ///< monotonic_ns() at emit
  std::uint64_t arg1 = 0;   ///< also the sample of a kCounter event
  std::uint64_t arg2 = 0;
  std::uint32_t tid = 0;    ///< session-assigned small thread id (1-based)
  TraceCategory category = TraceCategory::kCli;
  TracePhase phase = TracePhase::kInstant;
};

/// Fixed-capacity single-writer ring buffer of trace events.  The writer
/// overwrites the oldest slot when full (tracing must never stall the
/// traced code); the consumer detects lapped slots at drain time and
/// reports them as evicted.  Always compiled — the compile-time gate
/// applies to the *emit call sites*, not to the data structures, so the
/// session/export/watchdog machinery keeps working in disabled builds
/// (it just sees no events).
class TraceRing {
 public:
  /// \param capacity rounded up to the next power of two, minimum 8.
  /// \param tid the session-assigned id stamped on every event.
  TraceRing(std::size_t capacity, std::uint32_t tid);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::uint32_t tid() const { return tid_; }

  /// Writer side (owning thread only): stamp `ev` with this ring's tid
  /// and publish it, overwriting the oldest event when full.
  void push(TraceEvent ev) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    ev.tid = tid_;
    slots_[seq & mask_] = ev;
    head_.store(seq + 1, std::memory_order_release);
  }

  /// Events ever pushed (monotone; includes evicted ones).
  [[nodiscard]] std::uint64_t produced() const {
    return head_.load(std::memory_order_acquire);
  }

  struct DrainResult {
    std::size_t drained = 0;   ///< events appended to `out`
    std::uint64_t evicted = 0;  ///< events lost to wraparound since last drain
  };

  /// Consumer side: append every event published since the last drain to
  /// `out`, oldest first.  Safe to call while the writer is pushing: a
  /// slot the writer lapped mid-copy is discarded (counted as evicted)
  /// rather than returned torn.  Single consumer (the session serializes
  /// drains under its mutex).
  DrainResult drain_into(std::vector<TraceEvent>& out);

  /// Racy snapshot of the most recently published event, for watchdog
  /// diagnostics.  Returns false when no event is available or the
  /// writer lapped the slot mid-read.
  [[nodiscard]] bool last_event(TraceEvent& out) const;

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_ = 0;
  std::uint32_t tid_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_ = 0;  ///< consumer-owned: drained up to here
};

/// The process-wide trace collector: owns one ring per emitting thread
/// and renders them into a single drained timeline.  Install at most one
/// at a time; emit sites find the current session through one atomic
/// load.  Threads register lazily on their first event and cache their
/// ring thread-locally (invalidated by install/uninstall, so sessions
/// can be created and torn down repeatedly, e.g. by tests).
class TraceSession {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

  explicit TraceSession(std::size_t ring_capacity = kDefaultRingCapacity);
  ~TraceSession();  ///< uninstalls first if still current

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session; nullptr when tracing is off.
  [[nodiscard]] static TraceSession* current();

  /// Make this the process-wide session / retire it.  Not thread-safe
  /// against each other; call from the coordinating thread.
  void install();
  void uninstall();

  /// The calling thread's ring, created (and tid-assigned, in
  /// registration order starting at 1) on first use.
  [[nodiscard]] TraceRing& ring_for_current_thread();

  /// One drained timeline: per-ring event order is preserved, rings are
  /// concatenated in tid order and stably sorted by timestamp — so
  /// same-timestamp events of one thread keep their emit order and
  /// begin/end nesting survives.
  struct Drained {
    std::vector<TraceEvent> events;
    std::uint64_t evicted = 0;  ///< ring-wraparound losses, all threads
    std::size_t threads = 0;    ///< rings that ever registered
  };

  /// Drain every ring.  Incremental (a second drain returns only newer
  /// events) and safe while writers are active.
  [[nodiscard]] Drained drain();

  /// Watchdog diagnostics: per-thread last-event snapshots.
  struct ThreadState {
    std::uint32_t tid = 0;
    std::uint64_t produced = 0;
    bool has_last = false;
    TraceEvent last;  ///< valid when has_last
  };
  [[nodiscard]] std::vector<ThreadState> thread_states() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::size_t ring_capacity_;
};

namespace detail {
/// The emit-site fast path: current session (acquire) and a generation
/// counter that invalidates per-thread ring caches on install/uninstall.
extern std::atomic<TraceSession*> g_trace_session;
extern std::atomic<std::uint64_t> g_trace_generation;

void emit(const char* name, TraceCategory category, TracePhase phase,
          const char* arg1_name, std::uint64_t arg1, const char* arg2_name,
          std::uint64_t arg2);
}  // namespace detail

#if !defined(FVC_TRACE_DISABLED)

/// Compile-time gate, the tracing counterpart of NullSink::kEnabled.
inline constexpr bool kTraceEnabled = true;

/// True when a session is installed — the one branch a disabled-at-
/// runtime event site pays.
[[nodiscard]] inline bool trace_active() {
  return detail::g_trace_session.load(std::memory_order_acquire) != nullptr;
}

inline void trace_begin(const char* name, TraceCategory category) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kBegin, nullptr, 0, nullptr, 0);
  }
}
inline void trace_begin(const char* name, TraceCategory category,
                        const char* arg1_name, std::uint64_t arg1) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kBegin, arg1_name, arg1, nullptr, 0);
  }
}
inline void trace_begin(const char* name, TraceCategory category,
                        const char* arg1_name, std::uint64_t arg1,
                        const char* arg2_name, std::uint64_t arg2) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kBegin, arg1_name, arg1, arg2_name,
                 arg2);
  }
}
inline void trace_end(const char* name, TraceCategory category) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kEnd, nullptr, 0, nullptr, 0);
  }
}
inline void trace_instant(const char* name, TraceCategory category) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kInstant, nullptr, 0, nullptr, 0);
  }
}
inline void trace_instant(const char* name, TraceCategory category,
                          const char* arg1_name, std::uint64_t arg1) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kInstant, arg1_name, arg1, nullptr,
                 0);
  }
}
/// Counter sample: rendered as its own counter track named `name`.
inline void trace_counter(const char* name, TraceCategory category,
                          std::uint64_t value) {
  if (trace_active()) {
    detail::emit(name, category, TracePhase::kCounter, name, value, nullptr, 0);
  }
}

/// RAII begin/end slice.  The end is emitted only when the begin was
/// (the session decision is latched at construction), so a session
/// installed mid-scope cannot see an unmatched end.
class TraceScope {
 public:
  TraceScope(const char* name, TraceCategory category)
      : name_(name), category_(category), live_(trace_active()) {
    if (live_) {
      detail::emit(name_, category_, TracePhase::kBegin, nullptr, 0, nullptr, 0);
    }
  }
  TraceScope(const char* name, TraceCategory category, const char* arg1_name,
             std::uint64_t arg1)
      : name_(name), category_(category), live_(trace_active()) {
    if (live_) {
      detail::emit(name_, category_, TracePhase::kBegin, arg1_name, arg1,
                   nullptr, 0);
    }
  }
  TraceScope(const char* name, TraceCategory category, const char* arg1_name,
             std::uint64_t arg1, const char* arg2_name, std::uint64_t arg2)
      : name_(name), category_(category), live_(trace_active()) {
    if (live_) {
      detail::emit(name_, category_, TracePhase::kBegin, arg1_name, arg1,
                   arg2_name, arg2);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (live_) {
      detail::emit(name_, category_, TracePhase::kEnd, nullptr, 0, nullptr, 0);
    }
  }

 private:
  const char* name_;
  TraceCategory category_;
  bool live_;
};

#else  // FVC_TRACE_DISABLED

inline constexpr bool kTraceEnabled = false;

[[nodiscard]] inline bool trace_active() { return false; }
inline void trace_begin(const char*, TraceCategory) {}
inline void trace_begin(const char*, TraceCategory, const char*, std::uint64_t) {}
inline void trace_begin(const char*, TraceCategory, const char*, std::uint64_t,
                        const char*, std::uint64_t) {}
inline void trace_end(const char*, TraceCategory) {}
inline void trace_instant(const char*, TraceCategory) {}
inline void trace_instant(const char*, TraceCategory, const char*, std::uint64_t) {}
inline void trace_counter(const char*, TraceCategory, std::uint64_t) {}

class TraceScope {
 public:
  TraceScope(const char*, TraceCategory) {}
  TraceScope(const char*, TraceCategory, const char*, std::uint64_t) {}
  TraceScope(const char*, TraceCategory, const char*, std::uint64_t, const char*,
             std::uint64_t) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

#endif  // FVC_TRACE_DISABLED

}  // namespace fvc::obs
