#include "fvc/obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fvc::obs {

namespace {

/// Escape per RFC 8259 (same rules as json_export.cpp; duplicated rather
/// than shared so the two exporters stay independently header-light).
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microseconds with nanosecond fraction, rebased to the timeline origin.
void write_ts(std::ostream& os, std::uint64_t ts_ns, std::uint64_t origin_ns) {
  const std::uint64_t rel = ts_ns - origin_ns;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(rel / 1000),
                static_cast<unsigned long long>(rel % 1000));
  os << buf;
}

const char* phase_code(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kCounter:
      return "C";
  }
  return "i";
}

void write_event(std::ostream& os, const TraceEvent& ev, std::uint64_t origin_ns) {
  os << "    { \"name\": ";
  write_escaped(os, ev.name != nullptr ? ev.name : "(unnamed)");
  os << ", \"cat\": ";
  write_escaped(os, trace_category_name(ev.category));
  os << ", \"ph\": \"" << phase_code(ev.phase) << "\"";
  if (ev.phase == TracePhase::kInstant) {
    os << ", \"s\": \"t\"";  // thread-scoped instant marker
  }
  os << ", \"pid\": 1, \"tid\": " << ev.tid << ", \"ts\": ";
  write_ts(os, ev.ts_ns, origin_ns);
  if (ev.arg1_name != nullptr || ev.arg2_name != nullptr) {
    os << ", \"args\": {";
    bool first = true;
    if (ev.arg1_name != nullptr) {
      os << " ";
      write_escaped(os, ev.arg1_name);
      os << ": " << ev.arg1;
      first = false;
    }
    if (ev.arg2_name != nullptr) {
      os << (first ? " " : ", ");
      write_escaped(os, ev.arg2_name);
      os << ": " << ev.arg2;
    }
    os << " }";
  }
  os << " }";
}

}  // namespace

std::string_view trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kEngine:
      return "engine";
    case TraceCategory::kPool:
      return "pool";
    case TraceCategory::kTrial:
      return "trial";
    case TraceCategory::kScan:
      return "scan";
    case TraceCategory::kWatchdog:
      return "watchdog";
    case TraceCategory::kCli:
      return "cli";
  }
  return "cli";
}

void write_chrome_trace(std::ostream& os, const TraceSession::Drained& drained,
                        const TraceExportMeta& meta) {
  std::uint64_t origin_ns = 0;
  if (!drained.events.empty()) {
    origin_ns = drained.events.front().ts_ns;  // events are sorted by ts
  }

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n";
  os << "    \"schema\": ";
  write_escaped(os, kTraceSchema);
  os << ",\n    \"threads\": " << drained.threads;
  os << ",\n    \"events\": " << drained.events.size();
  os << ",\n    \"evicted\": " << drained.evicted;
  for (const auto& [key, value] : meta.labels) {
    os << ",\n    ";
    write_escaped(os, key);
    os << ": ";
    write_escaped(os, value);
  }
  os << "\n  },\n  \"traceEvents\": [\n";

  // Metadata events: process name once, thread names for every tid that
  // emitted something (the watchdog and short-lived workers included).
  os << "    { \"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        "\"args\": { \"name\": ";
  write_escaped(os, meta.process_name);
  os << " } }";
  std::set<std::uint32_t> tids;
  for (const TraceEvent& ev : drained.events) {
    tids.insert(ev.tid);
  }
  for (const std::uint32_t tid : tids) {
    os << ",\n    { \"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": { \"name\": \"fvc thread " << tid << "\" } }";
  }
  for (const TraceEvent& ev : drained.events) {
    os << ",\n";
    write_event(os, ev, origin_ns);
  }
  os << "\n  ]\n}\n";
}

std::string to_chrome_trace(const TraceSession::Drained& drained,
                            const TraceExportMeta& meta) {
  std::ostringstream ss;
  write_chrome_trace(ss, drained, meta);
  return ss.str();
}

void write_chrome_trace_file(const std::string& path,
                             const TraceSession::Drained& drained,
                             const TraceExportMeta& meta) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  }
  write_chrome_trace(os, drained, meta);
  if (!os) {
    throw std::runtime_error("write_chrome_trace_file: write failed for " + path);
  }
}

}  // namespace fvc::obs
