/// \file trajectory.hpp
/// \brief Object trajectories and along-path full-view auditing.
///
/// The operational question behind full-view coverage (Section I: traffic
/// monitoring, estate surveillance, animal protection) is about MOVING
/// objects: while an intruder walks through the region, is there always —
/// or at least quickly — a camera near its frontal view?  This module
/// samples piecewise-linear trajectories, derives facing directions from
/// the motion, and audits full-view coverage (and the weaker
/// facing-direction-only capture) along the path.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::track {

/// A sampled trajectory: positions plus the facing direction at each
/// sample (the direction of motion — the object looks where it walks).
struct Trajectory {
  std::vector<geom::Vec2> points;
  std::vector<double> facing;  ///< same length as points

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Random-waypoint path sampled every `step` of arc length: `segments`
/// uniform waypoints joined by straight lines (plane geometry; positions
/// stay inside the unit square).
/// \pre segments >= 1, step > 0
[[nodiscard]] Trajectory random_waypoint_path(stats::Pcg32& rng, std::size_t segments,
                                              double step);

/// Straight line from `from` to `to`, sampled every `step`.
[[nodiscard]] Trajectory straight_path(const geom::Vec2& from, const geom::Vec2& to,
                                       double step);

/// Along-path audit result.
struct TrackReport {
  std::size_t samples = 0;
  /// Samples whose position is full-view covered (face capture guaranteed
  /// whatever the object does).
  std::size_t full_view_samples = 0;
  /// Samples where the object's ACTUAL facing direction is safe (weaker:
  /// uses the motion-derived facing, Definition 1 for one direction).
  std::size_t facing_captured_samples = 0;
  /// First sample index with a safe facing direction, if any.
  std::optional<std::size_t> first_capture;

  [[nodiscard]] double full_view_fraction() const;
  [[nodiscard]] double facing_captured_fraction() const;
};

/// Audit `trajectory` against `net` with effective angle theta.
/// \pre theta in (0, pi]
[[nodiscard]] TrackReport evaluate_trajectory(const core::Network& net,
                                              const Trajectory& trajectory, double theta);

}  // namespace fvc::track
