#include "fvc/track/trajectory.hpp"

#include <cmath>
#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::track {

namespace {

/// Append the samples of segment [a, b] (excluding a itself when the
/// trajectory already ends there) every `step` of arc length.
void sample_segment(Trajectory& out, const geom::Vec2& a, const geom::Vec2& b,
                    double step) {
  const geom::Vec2 d = b - a;
  const double len = d.norm();
  if (len <= 1e-12) {
    return;
  }
  const double facing = geom::normalize_angle(d.angle());
  const auto samples = static_cast<std::size_t>(std::floor(len / step));
  for (std::size_t i = 1; i <= samples; ++i) {
    out.points.push_back(a + d * (static_cast<double>(i) * step / len));
    out.facing.push_back(facing);
  }
  // Always land exactly on the endpoint.
  if (out.points.empty() ||
      geom::distance(out.points.back(), b) > 1e-12) {
    out.points.push_back(b);
    out.facing.push_back(facing);
  }
}

}  // namespace

Trajectory random_waypoint_path(stats::Pcg32& rng, std::size_t segments, double step) {
  if (segments == 0) {
    throw std::invalid_argument("random_waypoint_path: segments must be >= 1");
  }
  if (!(step > 0.0)) {
    throw std::invalid_argument("random_waypoint_path: step must be positive");
  }
  Trajectory out;
  geom::Vec2 current{stats::uniform01(rng), stats::uniform01(rng)};
  out.points.push_back(current);
  out.facing.push_back(0.0);
  for (std::size_t s = 0; s < segments; ++s) {
    const geom::Vec2 next{stats::uniform01(rng), stats::uniform01(rng)};
    sample_segment(out, current, next, step);
    current = next;
  }
  // The first sample has no motion yet; face it along the first segment.
  if (out.facing.size() > 1) {
    out.facing[0] = out.facing[1];
  }
  return out;
}

Trajectory straight_path(const geom::Vec2& from, const geom::Vec2& to, double step) {
  if (!(step > 0.0)) {
    throw std::invalid_argument("straight_path: step must be positive");
  }
  Trajectory out;
  out.points.push_back(from);
  out.facing.push_back(geom::normalize_angle((to - from).angle()));
  sample_segment(out, from, to, step);
  return out;
}

double TrackReport::full_view_fraction() const {
  return samples == 0 ? 0.0
                      : static_cast<double>(full_view_samples) /
                            static_cast<double>(samples);
}

double TrackReport::facing_captured_fraction() const {
  return samples == 0 ? 0.0
                      : static_cast<double>(facing_captured_samples) /
                            static_cast<double>(samples);
}

TrackReport evaluate_trajectory(const core::Network& net, const Trajectory& trajectory,
                                double theta) {
  core::validate_theta(theta);
  if (trajectory.points.size() != trajectory.facing.size()) {
    throw std::invalid_argument("evaluate_trajectory: ragged trajectory");
  }
  TrackReport report;
  report.samples = trajectory.size();
  std::vector<double> dirs;
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    net.viewed_directions_into(trajectory.points[i], dirs);
    if (core::full_view_covered(dirs, theta).covered) {
      ++report.full_view_samples;
    }
    if (core::is_safe_direction(dirs, trajectory.facing[i], theta)) {
      ++report.facing_captured_samples;
      if (!report.first_capture.has_value()) {
        report.first_capture = i;
      }
    }
  }
  return report;
}

}  // namespace fvc::track
