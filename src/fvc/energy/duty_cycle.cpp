#include "fvc/energy/duty_cycle.hpp"

#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/core/region_coverage.hpp"
#include "fvc/stats/distributions.hpp"

namespace fvc::energy {

std::vector<core::Camera> sample_awake(std::span<const core::Camera> fleet, double p,
                                       stats::Pcg32& rng) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("sample_awake: p must be in [0, 1]");
  }
  std::vector<core::Camera> awake;
  awake.reserve(static_cast<std::size_t>(p * static_cast<double>(fleet.size())) + 8);
  for (const core::Camera& cam : fleet) {
    if (stats::bernoulli(rng, p)) {
      awake.push_back(cam);
    }
  }
  return awake;
}

void LifetimeConfig::validate() const {
  if (awake_probability < 0.0 || awake_probability > 1.0) {
    throw std::invalid_argument("LifetimeConfig: awake_probability in [0, 1]");
  }
  if (battery_rounds == 0) {
    throw std::invalid_argument("LifetimeConfig: battery_rounds must be >= 1");
  }
  core::validate_theta(theta);
  if (grid_side == 0) {
    throw std::invalid_argument("LifetimeConfig: grid_side must be >= 1");
  }
  if (max_rounds == 0) {
    throw std::invalid_argument("LifetimeConfig: max_rounds must be >= 1");
  }
}

LifetimeResult simulate_lifetime(std::span<const core::Camera> fleet,
                                 const LifetimeConfig& config, std::uint64_t seed) {
  config.validate();
  stats::Pcg32 rng = stats::make_child_rng(seed, 0xD07C);
  const core::DenseGrid grid(config.grid_side);

  std::vector<core::Camera> cameras(fleet.begin(), fleet.end());
  std::vector<std::size_t> charge(cameras.size(), config.battery_rounds);

  LifetimeResult result;
  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    // Draw the awake subset among still-charged cameras and spend charge.
    std::vector<core::Camera> awake;
    for (std::size_t i = 0; i < cameras.size(); ++i) {
      if (charge[i] == 0) {
        continue;
      }
      if (stats::bernoulli(rng, config.awake_probability)) {
        awake.push_back(cameras[i]);
        --charge[i];
      }
    }
    const core::Network net(std::move(awake));
    if (!core::grid_all_full_view(net, grid, config.theta)) {
      result.first_failure_round = round;
      break;
    }
    ++result.rounds_covered;
  }
  for (std::size_t c : charge) {
    result.cameras_alive += c > 0 ? 1 : 0;
  }
  return result;
}

}  // namespace fvc::energy
