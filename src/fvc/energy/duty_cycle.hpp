/// \file duty_cycle.hpp
/// \brief Duty-cycled fleets and network lifetime.
///
/// The k-coverage comparison the paper builds on (Kumar et al. [6],
/// Section VII-B) models energy saving by letting each sensor sleep: with
/// awake-probability p only np sensors are active at a time.  For
/// full-view coverage the same thinning applies, and it composes cleanly
/// with the CSA theory: an awake subset of a uniform deployment is
/// distributionally a uniform deployment whose covering-count law equals
/// the full fleet's with every sensing area scaled by p — so the paper's
/// area-is-all-that-matters principle prices duty cycling exactly (the
/// DUTY bench validates this against the exact Stevens mixture).
///
/// The lifetime simulator draws a fresh awake subset each round, spends
/// one battery unit per awake round, and reports how long the fleet keeps
/// the grid full-view covered.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fvc/core/camera.hpp"
#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::energy {

/// Independent thinning: each camera is awake with probability p.
/// \pre p in [0, 1]
[[nodiscard]] std::vector<core::Camera> sample_awake(std::span<const core::Camera> fleet,
                                                     double p, stats::Pcg32& rng);

/// Lifetime simulation parameters.
struct LifetimeConfig {
  double awake_probability = 0.5;  ///< per-round duty cycle p
  std::size_t battery_rounds = 10; ///< awake rounds each camera survives
  double theta = 1.0;              ///< full-view effective angle
  std::size_t grid_side = 16;      ///< audit grid resolution
  std::size_t max_rounds = 10000;  ///< simulation cap

  /// \throws std::invalid_argument on p outside [0,1], zero battery or
  /// grid, or theta outside (0, pi].
  void validate() const;
};

/// Outcome of a lifetime run.
struct LifetimeResult {
  /// Rounds during which the awake subset full-view covered the grid
  /// before the first failure (0 when round one already fails).
  std::size_t rounds_covered = 0;
  /// Round index of the first coverage failure; empty when the simulation
  /// hit max_rounds still covered.
  std::optional<std::size_t> first_failure_round;
  /// Cameras still holding charge when the run ended.
  std::size_t cameras_alive = 0;
};

/// Simulate: each round an independent awake subset of the still-charged
/// cameras is drawn; awake cameras spend one battery round; the run ends
/// at the first round whose awake subset fails to full-view cover the
/// grid, or at max_rounds.
[[nodiscard]] LifetimeResult simulate_lifetime(std::span<const core::Camera> fleet,
                                               const LifetimeConfig& config,
                                               std::uint64_t seed);

}  // namespace fvc::energy
