/// \file series.hpp
/// \brief Named numeric series + CSV emission, so each figure bench can dump
/// machine-readable data alongside its ASCII table.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fvc::report {

/// A collection of equally-long named columns (one x column plus any number
/// of y columns), emitted as CSV.
class SeriesSet {
 public:
  /// Add a column.  All columns must end up with the same length by the
  /// time `write_csv` is called.
  void add_column(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t columns() const { return names_.size(); }
  [[nodiscard]] std::size_t length() const;

  /// Emit "name1,name2,...\nv11,v21,...\n...".
  /// \throws std::logic_error when column lengths differ.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> values_;
};

}  // namespace fvc::report
