#include "fvc/report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fvc::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match headers");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_ci(double p, double lo, double hi, int precision) {
  std::ostringstream ss;
  ss << fmt(p, precision) << " [" << fmt(lo, precision) << ", " << fmt(hi, precision)
     << "]";
  return ss.str();
}

std::string fmt_interval(double lo, double hi, int precision) {
  std::ostringstream ss;
  ss << '[' << fmt(lo, precision) << ", " << fmt(hi, precision) << ']';
  return ss.str();
}

std::string fmt_point(double x, double y, int precision) {
  std::ostringstream ss;
  ss << '(' << fmt(x, precision) << ", " << fmt(y, precision) << ')';
  return ss.str();
}

std::string fmt_signed(double value, int precision) {
  std::ostringstream ss;
  ss << std::showpos << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

}  // namespace fvc::report
