#include "fvc/report/svg.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/core/grid.hpp"
#include "fvc/geometry/angle.hpp"

namespace fvc::report {

namespace {

std::string num(double v) {
  std::ostringstream ss;
  ss.precision(2);
  ss << std::fixed << v;
  return ss.str();
}

/// Escape the characters XML text nodes cannot hold verbatim.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

SvgCanvas::SvgCanvas(double size) : size_(size) {
  if (!(size > 0.0)) {
    throw std::invalid_argument("SvgCanvas: size must be positive");
  }
}

double SvgCanvas::px(double x) const { return x * size_; }
double SvgCanvas::py(double y) const { return (1.0 - y) * size_; }

void SvgCanvas::write(std::ostream& os) const {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size_ << "\" height=\""
     << size_ << "\" viewBox=\"0 0 " << size_ << ' ' << size_ << "\">\n";
  os << body_;
  os << "</svg>\n";
}

void SvgCanvas::circle(const geom::Vec2& c, double radius, const std::string& fill,
                       double opacity) {
  body_ += "<circle cx=\"" + num(px(c.x)) + "\" cy=\"" + num(py(c.y)) + "\" r=\"" +
           num(radius * size_) + "\" fill=\"" + fill + "\" fill-opacity=\"" +
           num(opacity) + "\"/>\n";
  ++elements_;
}

void SvgCanvas::sector(const geom::Vec2& c, double radius, double start_angle,
                       double width, const std::string& fill, double opacity) {
  if (width >= geom::kTwoPi - 1e-9) {
    circle(c, radius, fill, opacity);
    return;
  }
  const double end_angle = start_angle + width;
  const geom::Vec2 a = c + geom::Vec2::from_angle(start_angle) * radius;
  const geom::Vec2 b = c + geom::Vec2::from_angle(end_angle) * radius;
  const int large_arc = width > geom::kPi ? 1 : 0;
  // SVG's y axis points down, so a CCW sweep in unit coordinates is
  // sweep-flag 0 in pixel coordinates.
  body_ += "<path d=\"M " + num(px(c.x)) + ' ' + num(py(c.y)) + " L " + num(px(a.x)) +
           ' ' + num(py(a.y)) + " A " + num(radius * size_) + ' ' + num(radius * size_) +
           " 0 " + std::to_string(large_arc) + " 0 " + num(px(b.x)) + ' ' +
           num(py(b.y)) + " Z\" fill=\"" + fill + "\" fill-opacity=\"" + num(opacity) +
           "\"/>\n";
  ++elements_;
}

void SvgCanvas::line(const geom::Vec2& a, const geom::Vec2& b, const std::string& stroke,
                     double stroke_width_px) {
  body_ += "<line x1=\"" + num(px(a.x)) + "\" y1=\"" + num(py(a.y)) + "\" x2=\"" +
           num(px(b.x)) + "\" y2=\"" + num(py(b.y)) + "\" stroke=\"" + stroke +
           "\" stroke-width=\"" + num(stroke_width_px) + "\"/>\n";
  ++elements_;
}

void SvgCanvas::polyline(const std::vector<geom::Vec2>& points, const std::string& stroke,
                         double stroke_width_px) {
  if (points.size() < 2) {
    return;
  }
  std::string attr;
  for (const geom::Vec2& p : points) {
    attr += num(px(p.x)) + ',' + num(py(p.y)) + ' ';
  }
  body_ += "<polyline points=\"" + attr + "\" fill=\"none\" stroke=\"" + stroke +
           "\" stroke-width=\"" + num(stroke_width_px) + "\"/>\n";
  ++elements_;
}

void SvgCanvas::rect(const geom::Vec2& lo, const geom::Vec2& hi, const std::string& fill,
                     double opacity) {
  const double x = px(std::min(lo.x, hi.x));
  const double y = py(std::max(lo.y, hi.y));
  const double w = std::abs(hi.x - lo.x) * size_;
  const double h = std::abs(hi.y - lo.y) * size_;
  body_ += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" + num(w) +
           "\" height=\"" + num(h) + "\" fill=\"" + fill + "\" fill-opacity=\"" +
           num(opacity) + "\"/>\n";
  ++elements_;
}

void SvgCanvas::text(const geom::Vec2& p, const std::string& content, double font_px,
                     const std::string& fill) {
  body_ += "<text x=\"" + num(px(p.x)) + "\" y=\"" + num(py(p.y)) + "\" font-size=\"" +
           num(font_px) + "\" fill=\"" + fill + "\">" + escape(content) + "</text>\n";
  ++elements_;
}

void render_network_svg(std::ostream& os, const core::Network& net,
                        const NetworkSvgOptions& options) {
  SvgCanvas canvas(options.canvas_size);
  canvas.rect({0.0, 0.0}, {1.0, 1.0}, "#ffffff");
  if (options.draw_sectors) {
    for (const core::Camera& cam : net.cameras()) {
      canvas.sector(cam.position, cam.radius, cam.orientation - 0.5 * cam.fov, cam.fov,
                    options.sector_fill, 0.18);
    }
  }
  if (options.draw_positions) {
    for (const core::Camera& cam : net.cameras()) {
      canvas.circle(cam.position, 0.004, options.position_fill);
    }
  }
  if (options.hole_theta.has_value()) {
    core::validate_theta(*options.hole_theta);
    const core::DenseGrid grid(options.hole_grid_side);
    std::vector<double> dirs;
    grid.for_each([&](std::size_t, const geom::Vec2& p) {
      net.viewed_directions_into(p, dirs);
      if (!core::full_view_covered(dirs, *options.hole_theta).covered) {
        canvas.circle(p, 0.006, options.hole_fill, 0.8);
      }
    });
  }
  canvas.write(os);
}

}  // namespace fvc::report
