/// \file table.hpp
/// \brief ASCII table printer shared by the experiment binaries, so every
/// bench emits the paper's rows in a uniform, diffable format.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fvc::report {

/// A simple right-aligned ASCII table.  Cells are preformatted strings;
/// numeric helpers are provided for consistent formatting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting.
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Scientific formatting for the CSA magnitudes.
[[nodiscard]] std::string fmt_sci(double value, int precision = 3);

/// "p [lo, hi]" formatting of an estimate with its confidence interval.
[[nodiscard]] std::string fmt_ci(double p, double lo, double hi, int precision = 3);

/// "[lo, hi]" interval formatting.
[[nodiscard]] std::string fmt_interval(double lo, double hi, int precision = 3);

/// "(x, y)" coordinate formatting.
[[nodiscard]] std::string fmt_point(double x, double y, int precision = 3);

/// Always-signed decimal ("+0.12" / "-0.30").
[[nodiscard]] std::string fmt_signed(double value, int precision = 3);

}  // namespace fvc::report
