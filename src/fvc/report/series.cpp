#include "fvc/report/series.hpp"

#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace fvc::report {

void SeriesSet::add_column(std::string name, std::vector<double> values) {
  if (name.empty()) {
    throw std::invalid_argument("SeriesSet: column name must be non-empty");
  }
  names_.push_back(std::move(name));
  values_.push_back(std::move(values));
}

std::size_t SeriesSet::length() const {
  return values_.empty() ? 0 : values_.front().size();
}

void SeriesSet::write_csv(std::ostream& os) const {
  if (names_.empty()) {
    return;
  }
  const std::size_t len = length();
  for (const auto& col : values_) {
    if (col.size() != len) {
      throw std::logic_error("SeriesSet::write_csv: ragged columns");
    }
  }
  for (std::size_t c = 0; c < names_.size(); ++c) {
    os << (c == 0 ? "" : ",") << names_[c];
  }
  os << '\n';
  os << std::setprecision(10);
  for (std::size_t r = 0; r < len; ++r) {
    for (std::size_t c = 0; c < values_.size(); ++c) {
      os << (c == 0 ? "" : ",") << values_[c][r];
    }
    os << '\n';
  }
}

}  // namespace fvc::report
