/// \file svg.hpp
/// \brief SVG rendering of deployments: camera sectors, coverage holes,
/// obstacles, barriers — publication-ready figures from any experiment.
///
/// `SvgCanvas` is a tiny primitive writer (the unit square maps to a
/// pixel viewport, y flipped so north is up); `render_network_svg`
/// composes the standard deployment picture.  Everything emits plain SVG
/// 1.1 with no dependencies.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fvc/core/network.hpp"
#include "fvc/geometry/vec2.hpp"

namespace fvc::report {

/// Primitive SVG writer over the unit square.
class SvgCanvas {
 public:
  /// Viewport is `size` x `size` pixels; unit coordinates scale onto it.
  /// \pre size > 0
  explicit SvgCanvas(double size = 640.0);

  /// Emit the document: header, accumulated body, footer.
  void write(std::ostream& os) const;

  /// Filled circle at unit-square position `c` with unit-scale radius.
  void circle(const geom::Vec2& c, double radius, const std::string& fill,
              double opacity = 1.0);

  /// Circular sector (pie slice): apex `c`, radius, CCW from `start_angle`
  /// spanning `width` radians.
  void sector(const geom::Vec2& c, double radius, double start_angle, double width,
              const std::string& fill, double opacity = 0.25);

  /// Stroked segment.
  void line(const geom::Vec2& a, const geom::Vec2& b, const std::string& stroke,
            double stroke_width_px = 1.0);

  /// Stroked open polyline through `points`.
  void polyline(const std::vector<geom::Vec2>& points, const std::string& stroke,
                double stroke_width_px = 1.0);

  /// Axis-aligned rectangle from corner `lo` to corner `hi`.
  void rect(const geom::Vec2& lo, const geom::Vec2& hi, const std::string& fill,
            double opacity = 1.0);

  /// Text label anchored at `p` (unit coordinates), font in pixels.
  void text(const geom::Vec2& p, const std::string& content, double font_px = 12.0,
            const std::string& fill = "#333333");

  [[nodiscard]] double size() const { return size_; }
  [[nodiscard]] std::size_t element_count() const { return elements_; }

 private:
  /// Map unit coordinates to pixels (y flipped).
  [[nodiscard]] double px(double x) const;
  [[nodiscard]] double py(double y) const;

  double size_;
  std::string body_;
  std::size_t elements_ = 0;
};

/// Options for the standard deployment rendering.
struct NetworkSvgOptions {
  double canvas_size = 640.0;
  bool draw_sectors = true;          ///< translucent sensing sectors
  bool draw_positions = true;        ///< camera position dots
  std::optional<double> hole_theta;  ///< when set, mark full-view holes on a grid
  std::size_t hole_grid_side = 32;   ///< audit resolution for hole marking
  std::string sector_fill = "#4477aa";
  std::string position_fill = "#222222";
  std::string hole_fill = "#cc3311";
};

/// Render a deployment (and optionally its full-view holes) to SVG.
void render_network_svg(std::ostream& os, const core::Network& net,
                        const NetworkSvgOptions& options);

}  // namespace fvc::report
