#include "fvc/report/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace fvc::report {

CoverageMap::CoverageMap(std::size_t side,
                         const std::function<double(const geom::Vec2&)>& field)
    : side_(side) {
  if (side == 0) {
    throw std::invalid_argument("CoverageMap: side must be >= 1");
  }
  values_.reserve(side * side);
  bool first = true;
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const geom::Vec2 p{(static_cast<double>(c) + 0.5) / static_cast<double>(side),
                         (static_cast<double>(r) + 0.5) / static_cast<double>(side)};
      const double v = field(p);
      values_.push_back(v);
      if (first) {
        min_ = max_ = v;
        first = false;
      } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
      }
    }
  }
}

double CoverageMap::value(std::size_t row, std::size_t col) const {
  if (row >= side_ || col >= side_) {
    throw std::out_of_range("CoverageMap::value: index outside map");
  }
  return values_[row * side_ + col];
}

namespace {
constexpr char kRamp[] = " .:-=+*#%@";
constexpr std::size_t kRampSize = sizeof(kRamp) - 1;
}  // namespace

void CoverageMap::render_ascii(std::ostream& os) const {
  const double span = max_ - min_;
  for (std::size_t r = side_; r-- > 0;) {  // row side_-1 (top, y near 1) first
    for (std::size_t c = 0; c < side_; ++c) {
      const double v = values_[r * side_ + c];
      std::size_t level;
      if (span <= 0.0) {
        level = v > 0.0 ? kRampSize - 1 : 0;
      } else {
        level = static_cast<std::size_t>(((v - min_) / span) * (kRampSize - 1) + 0.5);
        level = std::min(level, kRampSize - 1);
      }
      os << kRamp[level];
    }
    os << '\n';
  }
}

void CoverageMap::write_ppm(std::ostream& os) const {
  os << "P6\n" << side_ << ' ' << side_ << "\n255\n";
  const double span = max_ - min_;
  for (std::size_t r = side_; r-- > 0;) {
    for (std::size_t c = 0; c < side_; ++c) {
      const double v = values_[r * side_ + c];
      const double t = span <= 0.0 ? (v > 0.0 ? 1.0 : 0.0) : (v - min_) / span;
      const auto g = static_cast<unsigned char>(std::lround(255.0 * t));
      os.put(static_cast<char>(g));
      os.put(static_cast<char>(g));
      os.put(static_cast<char>(g));
    }
  }
}

}  // namespace fvc::report
