/// \file heatmap.hpp
/// \brief Coverage-map rendering: ASCII for terminals, PPM for reports.
///
/// The wildlife-monitor workflow and the repair optimizer both want to
/// SHOW where coverage fails.  `CoverageMap` samples any per-point scalar
/// (coverage degree, full-view status, confidence) over a square grid and
/// renders it.

#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <vector>

#include "fvc/geometry/vec2.hpp"

namespace fvc::report {

/// A sampled scalar field over the unit square.
class CoverageMap {
 public:
  /// Sample `field` on a side x side grid of cell centres.
  /// \pre side >= 1
  CoverageMap(std::size_t side, const std::function<double(const geom::Vec2&)>& field);

  [[nodiscard]] std::size_t side() const { return side_; }
  [[nodiscard]] double value(std::size_t row, std::size_t col) const;
  [[nodiscard]] double min_value() const { return min_; }
  [[nodiscard]] double max_value() const { return max_; }

  /// ASCII rendering: rows top to bottom, one character per cell from the
  /// ramp " .:-=+*#%@" scaled to [min, max].  A degenerate (constant)
  /// field renders as all '@' when nonzero, all ' ' when zero.
  void render_ascii(std::ostream& os) const;

  /// Binary PPM (P6) grayscale rendering, 1 pixel per cell.
  void write_ppm(std::ostream& os) const;

 private:
  std::size_t side_;
  std::vector<double> values_;  // row-major, row 0 at y near 0
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fvc::report
