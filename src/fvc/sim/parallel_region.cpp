#include "fvc/sim/parallel_region.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fvc/core/grid_eval.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/sim/thread_pool.hpp"

namespace fvc::sim {

namespace {

/// Shared core of the metered/unmetered row scans.  `counter_slots` is
/// either empty (metrics off) or one `GridEvalCounters` per row, merged by
/// the caller in row order.
core::RegionCoverageStats scan_rows(const core::GridEvalEngine& engine,
                                    const core::DenseGrid& grid, std::size_t threads,
                                    std::vector<core::GridEvalCounters>* counter_slots,
                                    PoolMetrics* pool) {
  const std::size_t rows = engine.rows();
  std::vector<core::GridRowStats> row_stats(rows);
  parallel_for(
      rows, threads,
      [&](std::size_t row) {
        thread_local core::GridEvalScratch scratch;
        scratch.counters =
            counter_slots != nullptr ? &(*counter_slots)[row] : nullptr;
        row_stats[row] = engine.row_stats(row, scratch);
        scratch.counters = nullptr;  // scratch outlives this call (thread_local)
      },
      pool);
  // Reduce in row order.  The counts are order-independent sums and the
  // min/max reductions are associative and commutative, so the totals are
  // bit-identical to the serial scan regardless of how rows were scheduled.
  core::RegionCoverageStats stats;
  stats.total_points = grid.size();
  for (std::size_t row = 0; row < rows; ++row) {
    const core::GridRowStats& rs = row_stats[row];
    stats.covered_1 += rs.covered_1;
    stats.necessary_ok += rs.necessary_ok;
    stats.full_view_ok += rs.full_view_ok;
    stats.sufficient_ok += rs.sufficient_ok;
    stats.k_covered_ok += rs.k_covered_ok;
    if (row == 0) {
      stats.min_max_gap = rs.min_max_gap;
      stats.max_max_gap = rs.max_max_gap;
    } else {
      stats.min_max_gap = std::min(stats.min_max_gap, rs.min_max_gap);
      stats.max_max_gap = std::max(stats.max_max_gap, rs.max_max_gap);
    }
  }
  return stats;
}

}  // namespace

core::RegionCoverageStats evaluate_region_parallel(const core::Network& net,
                                                   const core::DenseGrid& grid,
                                                   double theta, std::size_t threads) {
  const core::GridEvalEngine engine(net, grid, theta);
  return scan_rows(engine, grid, threads, nullptr, nullptr);
}

core::RegionCoverageStats evaluate_region_parallel_metered(const core::Network& net,
                                                           const core::DenseGrid& grid,
                                                           double theta,
                                                           std::size_t threads,
                                                           obs::MetricsNode& node) {
  const core::GridEvalEngine engine(net, grid, theta);
  std::vector<core::GridEvalCounters> counter_slots(engine.rows());
  PoolMetrics pool;
  core::RegionCoverageStats stats;
  {
    const obs::Span scan_span(node.child("scan"));
    stats = scan_rows(engine, grid, threads, &counter_slots, &pool);
  }
  obs::MetricsNode& engine_node = node.child("engine");
  engine.describe(engine_node);
  core::GridEvalCounters merged;
  for (const core::GridEvalCounters& c : counter_slots) {
    merged.merge(c);
  }
  merged.describe(engine_node);
  describe(pool, node.child("pool"));
  return stats;
}

GridEvents grid_events_parallel(const core::Network& net, const core::DenseGrid& grid,
                                double theta, std::size_t threads) {
  const core::GridEvalEngine engine(net, grid, theta);
  const std::size_t rows = engine.rows();
  std::vector<core::GridRowEvents> row_events(rows);
  // Cooperative early exit: a necessary-condition failure anywhere decides
  // the whole result, so later rows may be skipped.  Skipped rows default
  // to all-true and cannot flip the AND-reduction, which keeps the result
  // independent of scheduling.
  std::atomic<bool> necessary_failed{false};
  parallel_for(rows, threads, [&](std::size_t row) {
    if (necessary_failed.load(std::memory_order_relaxed)) {
      return;
    }
    thread_local core::GridEvalScratch scratch;
    row_events[row] = engine.row_events(row, scratch, true, true);
    if (!row_events[row].all_necessary) {
      necessary_failed.store(true, std::memory_order_relaxed);
    }
  });
  GridEvents ev{true, true, true};
  for (const core::GridRowEvents& re : row_events) {
    if (!re.all_necessary) {
      return {false, false, false};
    }
    ev.all_full_view = ev.all_full_view && re.all_full_view;
    ev.all_sufficient = ev.all_sufficient && re.all_sufficient;
  }
  return ev;
}

}  // namespace fvc::sim
