#include "fvc/sim/parallel_region.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fvc/core/grid_eval.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/sim/thread_pool.hpp"

namespace fvc::sim {

namespace {

/// Scheduling shape of one blocked row scan, resolved once so the block
/// callback, the slot allocation and the reduction all agree on it.
struct BlockPlan {
  std::size_t workers = 0;  ///< clamped worker count (slot key range)
  std::size_t grain = 0;    ///< resolved rows per block (>= 1)
  std::size_t blocks = 0;   ///< ceil(rows / grain)
};

BlockPlan plan_blocks(std::size_t rows, std::size_t threads, std::size_t grain) {
  BlockPlan plan;
  if (rows == 0) {
    return plan;
  }
  plan.workers = std::clamp<std::size_t>(threads, 1, rows);
  plan.grain = grain == 0 ? choose_grain(rows, plan.workers)
                          : std::min(grain, rows);
  plan.blocks = (rows + plan.grain - 1) / plan.grain;
  return plan;
}

/// Shared core of the metered/unmetered row scans.  Workers claim `grain`
/// contiguous rows per cursor claim and fuse them through one
/// `block_stats` engine call, writing one slot per block; the slots are
/// reduced in block order, which is exactly row order, so the totals are
/// bit-identical to the serial scan for every thread count and grain.
/// `counter_slots` is either empty (metrics off) or one `GridEvalCounters`
/// per worker — the totals are order-independent sums, so merging the
/// worker slots in worker order is deterministic even though which rows a
/// worker ran is not.
core::RegionCoverageStats scan_rows(const core::GridEvalEngine& engine,
                                    const core::DenseGrid& grid, const BlockPlan& plan,
                                    std::vector<core::GridEvalCounters>* counter_slots,
                                    PoolMetrics* pool) {
  const std::size_t rows = engine.rows();
  std::vector<core::GridRowStats> block_stats(plan.blocks);
  parallel_for_blocked(
      rows, plan.workers, plan.grain,
      [&](std::size_t begin, std::size_t end, std::size_t worker) {
        // The scratch also carries the stream index's row-slice cache,
        // keyed by (engine generation, row): each row's candidate slice is
        // built once per worker and reused across the row's points and
        // across blocks, with no cross-thread sharing.
        thread_local core::GridEvalScratch scratch;
        scratch.counters =
            counter_slots != nullptr ? &(*counter_slots)[worker] : nullptr;
        block_stats[begin / plan.grain] = engine.block_stats(begin, end, scratch);
        scratch.counters = nullptr;  // scratch outlives this call (thread_local)
      },
      pool);
  // Reduce in block order.  Each block was folded over its rows in row
  // order, so this fold replays the serial scan's row-order reduction
  // exactly (regrouped associatively): bit-identical totals regardless of
  // which worker ran which block.
  core::RegionCoverageStats stats;
  stats.total_points = grid.size();
  for (std::size_t block = 0; block < plan.blocks; ++block) {
    const core::GridRowStats& bs = block_stats[block];
    stats.covered_1 += bs.covered_1;
    stats.necessary_ok += bs.necessary_ok;
    stats.full_view_ok += bs.full_view_ok;
    stats.sufficient_ok += bs.sufficient_ok;
    stats.k_covered_ok += bs.k_covered_ok;
    if (block == 0) {
      stats.min_max_gap = bs.min_max_gap;
      stats.max_max_gap = bs.max_max_gap;
    } else {
      stats.min_max_gap = std::min(stats.min_max_gap, bs.min_max_gap);
      stats.max_max_gap = std::max(stats.max_max_gap, bs.max_max_gap);
    }
  }
  return stats;
}

}  // namespace

core::RegionCoverageStats evaluate_region_parallel(const core::Network& net,
                                                   const core::DenseGrid& grid,
                                                   double theta, std::size_t threads,
                                                   std::size_t grain,
                                                   obs::MetricsNode* metrics) {
  const core::GridEvalEngine engine(net, grid, theta);
  const BlockPlan plan = plan_blocks(engine.rows(), threads, grain);
  if (metrics == nullptr) {
    return scan_rows(engine, grid, plan, nullptr, nullptr);
  }
  std::vector<core::GridEvalCounters> counter_slots(plan.workers);
  PoolMetrics pool;
  core::RegionCoverageStats stats;
  {
    const obs::Span scan_span(metrics->child("scan"));
    stats = scan_rows(engine, grid, plan, &counter_slots, &pool);
  }
  obs::MetricsNode& engine_node = metrics->child("engine");
  engine.describe(engine_node);
  core::GridEvalCounters merged;
  for (const core::GridEvalCounters& c : counter_slots) {
    merged.merge(c);
  }
  merged.describe(engine_node);
  describe(pool, metrics->child("pool"));
  return stats;
}

GridEvents grid_events_parallel(const core::Network& net, const core::DenseGrid& grid,
                                double theta, std::size_t threads, std::size_t grain) {
  const core::GridEvalEngine engine(net, grid, theta);
  const std::size_t rows = engine.rows();
  const BlockPlan plan = plan_blocks(rows, threads, grain);
  std::vector<core::GridRowEvents> block_events(plan.blocks);
  // Cooperative early exit: a necessary-condition failure anywhere decides
  // the whole result, so later rows (checked between the rows of a block
  // too) may be skipped.  Skipped rows default to all-true and cannot flip
  // the AND-reduction, which keeps the result independent of scheduling.
  std::atomic<bool> necessary_failed{false};
  parallel_for_blocked(rows, plan.workers, plan.grain,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         thread_local core::GridEvalScratch scratch;
                         core::GridRowEvents acc;
                         for (std::size_t row = begin; row < end; ++row) {
                           if (necessary_failed.load(std::memory_order_relaxed)) {
                             break;
                           }
                           const core::GridRowEvents re =
                               engine.row_events(row, scratch, true, true);
                           acc.all_necessary = acc.all_necessary && re.all_necessary;
                           acc.all_full_view = acc.all_full_view && re.all_full_view;
                           acc.all_sufficient =
                               acc.all_sufficient && re.all_sufficient;
                           if (!re.all_necessary) {
                             necessary_failed.store(true, std::memory_order_relaxed);
                             break;
                           }
                         }
                         block_events[begin / plan.grain] = acc;
                       });
  GridEvents ev{true, true, true};
  for (const core::GridRowEvents& be : block_events) {
    if (!be.all_necessary) {
      return {false, false, false};
    }
    ev.all_full_view = ev.all_full_view && be.all_full_view;
    ev.all_sufficient = ev.all_sufficient && be.all_sufficient;
  }
  return ev;
}

}  // namespace fvc::sim
