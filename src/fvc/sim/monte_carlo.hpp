/// \file monte_carlo.hpp
/// \brief Multi-trial estimators over the trial runner.
///
/// Determinism contract: trial t of a run with master seed S is seeded with
/// mix64(S, t), so estimates are bit-identical across thread counts.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fvc/obs/cancellation.hpp"
#include "fvc/sim/trial.hpp"
#include "fvc/stats/confidence.hpp"
#include "fvc/stats/summary.hpp"

namespace fvc::obs {
class MetricsNode;  // fvc/obs/run_metrics.hpp
}

namespace fvc::sim {

/// Estimate of a Bernoulli event from repeated trials.
struct EventEstimate {
  std::size_t trials = 0;
  std::size_t successes = 0;

  [[nodiscard]] double p() const;
  [[nodiscard]] stats::Interval wilson(double z = 1.96) const;
};

/// Monte-Carlo estimates of the three whole-grid events.
struct GridEventsEstimate {
  EventEstimate necessary;   ///< P(H_N): grid meets the necessary condition
  EventEstimate full_view;   ///< P(grid exactly full-view covered)
  EventEstimate sufficient;  ///< P(H_S): grid meets the sufficient condition
};

/// Cross-cutting options of a Monte-Carlo run (all optional; the defaults
/// reproduce the bare estimate exactly).
struct RunOptions {
  /// Cooperative cancellation: polled between trials.  A cancelled run
  /// returns a PARTIAL estimate over exactly the trials that completed
  /// (`EventEstimate::trials` reflects that count; it is 0 when
  /// cancellation preceded every trial, in which case `p()` is undefined).
  obs::CancellationToken* cancel = nullptr;
  /// Called after every completed trial with (done, total), serialized
  /// under an internal mutex; keep it fast.
  obs::ProgressFn progress;
  /// When non-null, filled with a subtree: `trials` (per-trial wall-time
  /// stats, early-exit counts), `engine` (merged GridEvalEngine counters),
  /// `pool` (worker busy/idle).  Collection never changes the estimates.
  obs::MetricsNode* metrics = nullptr;
  /// When non-empty, run ONLY these trial indices (a shard of [0, trials),
  /// or the not-yet-done remainder of a resumed run).  Each index t still
  /// draws its seed as mix64(master_seed, t), so the union of disjoint
  /// subsets reproduces the unsharded run bit-for-bit.  Indices must be
  /// strictly increasing and < trials.  The returned estimate counts only
  /// the trials this call ran; callers folding a sharded run aggregate
  /// via `on_trial` payloads instead.
  std::span<const std::uint64_t> trial_indices;
  /// Called after every completed trial with its index and events,
  /// serialized under an internal mutex (the checkpoint hook).
  std::function<void(std::uint64_t index, const TrialEvents& events)> on_trial;
  /// Trials per scheduler claim (the CLI's --grain).  0 keeps the default
  /// of 1: trial costs vary wildly (early exits), so fine-grained claiming
  /// is what balances them, and one atomic claim is noise next to a trial.
  /// Raise it only when trials are so short the claim cost shows up.
  std::size_t grain = 0;
};

/// Run `trials` independent trials of `cfg` on `threads` workers and count
/// the whole-grid events.  The default (empty) options run the bare
/// estimator; the estimate is bit-identical for any thread count and any
/// metrics/progress settings whenever the run is not cancelled.
[[nodiscard]] GridEventsEstimate estimate_grid_events(const TrialConfig& cfg,
                                                      std::size_t trials,
                                                      std::uint64_t master_seed,
                                                      std::size_t threads,
                                                      const RunOptions& options = {});

/// Checkpoint payload codec for one trial: the three event bits as
/// doubles, in TrialEvents field order.  The layout is part of the
/// "simulate" entry of the fvc.checkpoint/1 format.
[[nodiscard]] std::vector<double> encode_trial_events(const TrialEvents& events);
/// Inverse of `encode_trial_events`; throws std::invalid_argument when the
/// payload is not three values in {0, 1}.
[[nodiscard]] TrialEvents decode_trial_events(std::span<const double> payload);

/// Fold per-trial events (e.g. decoded from merged checkpoints) into the
/// estimate the uninterrupted run would have produced.  The fold is
/// order-independent — success counts are integer sums — so any shard
/// interleaving yields the same result.
[[nodiscard]] GridEventsEstimate aggregate_grid_events(std::span<const TrialEvents> events);

/// Monte-Carlo estimates of the per-point fractions, i.e. the empirical
/// counterparts of the expected-area probabilities P(F_N,P)-bar, P_N, P_S.
struct FractionEstimate {
  stats::OnlineStats covered_1;
  stats::OnlineStats necessary;
  stats::OnlineStats full_view;
  stats::OnlineStats sufficient;
  stats::OnlineStats k_covered;
  stats::OnlineStats deployed_count;  ///< realized sensor count (Poisson varies)
};

/// Run `trials` trials and accumulate per-trial grid fractions.
[[nodiscard]] FractionEstimate estimate_fractions(const TrialConfig& cfg,
                                                  std::size_t trials,
                                                  std::uint64_t master_seed,
                                                  std::size_t threads);

}  // namespace fvc::sim
