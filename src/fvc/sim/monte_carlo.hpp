/// \file monte_carlo.hpp
/// \brief Multi-trial estimators over the trial runner.
///
/// Determinism contract: trial t of a run with master seed S is seeded with
/// mix64(S, t), so estimates are bit-identical across thread counts.

#pragma once

#include <cstdint>

#include "fvc/sim/trial.hpp"
#include "fvc/stats/confidence.hpp"
#include "fvc/stats/summary.hpp"

namespace fvc::sim {

/// Estimate of a Bernoulli event from repeated trials.
struct EventEstimate {
  std::size_t trials = 0;
  std::size_t successes = 0;

  [[nodiscard]] double p() const;
  [[nodiscard]] stats::Interval wilson(double z = 1.96) const;
};

/// Monte-Carlo estimates of the three whole-grid events.
struct GridEventsEstimate {
  EventEstimate necessary;   ///< P(H_N): grid meets the necessary condition
  EventEstimate full_view;   ///< P(grid exactly full-view covered)
  EventEstimate sufficient;  ///< P(H_S): grid meets the sufficient condition
};

/// Run `trials` independent trials of `cfg` on `threads` workers and count
/// the whole-grid events.
[[nodiscard]] GridEventsEstimate estimate_grid_events(const TrialConfig& cfg,
                                                      std::size_t trials,
                                                      std::uint64_t master_seed,
                                                      std::size_t threads);

/// Monte-Carlo estimates of the per-point fractions, i.e. the empirical
/// counterparts of the expected-area probabilities P(F_N,P)-bar, P_N, P_S.
struct FractionEstimate {
  stats::OnlineStats covered_1;
  stats::OnlineStats necessary;
  stats::OnlineStats full_view;
  stats::OnlineStats sufficient;
  stats::OnlineStats k_covered;
  stats::OnlineStats deployed_count;  ///< realized sensor count (Poisson varies)
};

/// Run `trials` trials and accumulate per-trial grid fractions.
[[nodiscard]] FractionEstimate estimate_fractions(const TrialConfig& cfg,
                                                  std::size_t trials,
                                                  std::uint64_t master_seed,
                                                  std::size_t threads);

}  // namespace fvc::sim
