#include "fvc/sim/thread_pool.hpp"

#include <algorithm>

namespace fvc::sim {

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 64);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  threads = std::clamp<std::size_t>(threads, 1, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        cursor.store(count, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace fvc::sim
