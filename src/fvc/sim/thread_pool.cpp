#include "fvc/sim/thread_pool.hpp"

#include <algorithm>

#include "fvc/obs/metrics.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/obs/trace.hpp"

namespace fvc::sim {

void describe(const PoolMetrics& pool, obs::MetricsNode& node) {
  node.set("workers", static_cast<double>(pool.workers.size()));
  node.set("requested_threads", static_cast<double>(pool.requested_threads));
  node.add("tasks", static_cast<double>(pool.total_tasks()));
  node.add("busy_ns", static_cast<double>(pool.total_busy_ns()));
  node.add("idle_ns", static_cast<double>(pool.total_idle_ns()));
  node.add_elapsed_ns(pool.wall_ns);
  const double capacity =
      static_cast<double>(pool.wall_ns) * static_cast<double>(pool.workers.size());
  node.set("utilization",
           capacity > 0.0 ? static_cast<double>(pool.total_busy_ns()) / capacity : 0.0);
  obs::LogHistogram& per_worker = node.histogram("tasks_per_worker");
  for (const PoolMetrics::Worker& w : pool.workers) {
    per_worker.add(w.tasks);
  }
}

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 64);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(count, threads, fn, nullptr);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn, PoolMetrics* metrics) {
  if (metrics != nullptr) {
    metrics->requested_threads = threads;
    metrics->workers.clear();
    metrics->wall_ns = 0;
  }
  if (count == 0) {
    return;
  }
  threads = std::clamp<std::size_t>(threads, 1, count);
  const obs::TraceScope pool_scope("pool.parallel_for", obs::TraceCategory::kPool,
                                   "count", count, "threads", threads);
  const std::uint64_t wall_start =
      metrics != nullptr ? obs::monotonic_ns() : 0;
  if (threads == 1) {
    if (metrics == nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        const obs::TraceScope task_scope("pool.task", obs::TraceCategory::kPool,
                                         "index", i);
        fn(i);
      }
      return;
    }
    PoolMetrics::Worker w;
    for (std::size_t i = 0; i < count; ++i) {
      const obs::TraceScope task_scope("pool.task", obs::TraceCategory::kPool,
                                       "index", i);
      const std::uint64_t t0 = obs::monotonic_ns();
      fn(i);
      w.busy_ns += obs::monotonic_ns() - t0;
      ++w.tasks;
    }
    metrics->workers.push_back(w);
    metrics->wall_ns = obs::monotonic_ns() - wall_start;
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<PoolMetrics::Worker> worker_slots(metrics != nullptr ? threads : 0);
  auto worker = [&](std::size_t self) {
    const obs::TraceScope worker_scope("pool.worker", obs::TraceCategory::kPool,
                                       "worker", self);
    PoolMetrics::Worker* const slot =
        metrics != nullptr ? &worker_slots[self] : nullptr;
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        obs::trace_instant("pool.queue_empty", obs::TraceCategory::kPool,
                           "worker", self);
        return;
      }
      try {
        const obs::TraceScope task_scope("pool.task", obs::TraceCategory::kPool,
                                         "index", i);
        if (slot != nullptr) {
          const std::uint64_t t0 = obs::monotonic_ns();
          fn(i);
          slot->busy_ns += obs::monotonic_ns() - t0;
          ++slot->tasks;
        } else {
          fn(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        cursor.store(count, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (metrics != nullptr) {
    metrics->workers = std::move(worker_slots);
    metrics->wall_ns = obs::monotonic_ns() - wall_start;
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace fvc::sim
