#include "fvc/sim/thread_pool.hpp"

#include <algorithm>

#include "fvc/obs/metrics.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/obs/trace.hpp"

namespace fvc::sim {

void describe(const PoolMetrics& pool, obs::MetricsNode& node) {
  node.set("workers", static_cast<double>(pool.workers.size()));
  node.set("requested_threads", static_cast<double>(pool.requested_threads));
  node.set("grain", static_cast<double>(pool.grain));
  node.add("tasks", static_cast<double>(pool.total_tasks()));
  node.add("blocks", static_cast<double>(pool.total_blocks()));
  node.add("busy_ns", static_cast<double>(pool.total_busy_ns()));
  node.add("idle_ns", static_cast<double>(pool.total_idle_ns()));
  node.add_elapsed_ns(pool.wall_ns);
  node.set("utilization", pool.utilization());
  obs::LogHistogram& per_worker = node.histogram("tasks_per_worker");
  for (const PoolMetrics::Worker& w : pool.workers) {
    per_worker.add(w.tasks);
  }
}

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 64);
}

std::size_t choose_grain(std::size_t count, std::size_t threads, std::size_t min_grain) {
  threads = std::max<std::size_t>(threads, 1);
  const std::size_t even = count / (threads * kGrainOversubscribe);
  return std::max<std::size_t>({even, min_grain, 1});
}

void parallel_for_blocked(std::size_t count, std::size_t threads, std::size_t grain,
                          const ParallelBlockFn& fn, PoolMetrics* metrics) {
  if (metrics != nullptr) {
    metrics->requested_threads = threads;
    metrics->grain = 0;
    metrics->workers.clear();
    metrics->wall_ns = 0;
  }
  if (count == 0) {
    return;
  }
  threads = std::clamp<std::size_t>(threads, 1, count);
  grain = grain == 0 ? choose_grain(count, threads) : std::min(grain, count);
  if (metrics != nullptr) {
    metrics->grain = grain;
  }
  // The event payload carries two args; grain is recoverable from any
  // pool.block slice ("count" = block width), so the section keeps the
  // historical count/threads pair.
  const obs::TraceScope pool_scope("pool.parallel_for", obs::TraceCategory::kPool,
                                   "count", count, "threads", threads);
  const std::uint64_t wall_start =
      metrics != nullptr ? obs::monotonic_ns() : 0;
  if (threads == 1) {
    PoolMetrics::Worker w;
    for (std::size_t begin = 0; begin < count; begin += grain) {
      const std::size_t end = std::min(begin + grain, count);
      const obs::TraceScope block_scope("pool.block", obs::TraceCategory::kPool,
                                        "begin", begin, "count", end - begin);
      if (metrics == nullptr) {
        fn(begin, end, 0);
      } else {
        const std::uint64_t t0 = obs::monotonic_ns();
        fn(begin, end, 0);
        w.busy_ns += obs::monotonic_ns() - t0;
        w.tasks += end - begin;
        ++w.blocks;
      }
    }
    if (metrics != nullptr) {
      metrics->workers.push_back(w);
      metrics->wall_ns = obs::monotonic_ns() - wall_start;
    }
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<PoolMetrics::Worker> worker_slots(metrics != nullptr ? threads : 0);
  auto worker = [&](std::size_t self) {
    const obs::TraceScope worker_scope("pool.worker", obs::TraceCategory::kPool,
                                       "worker", self);
    PoolMetrics::Worker* const slot =
        metrics != nullptr ? &worker_slots[self] : nullptr;
    while (true) {
      const std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) {
        obs::trace_instant("pool.queue_empty", obs::TraceCategory::kPool,
                           "worker", self);
        return;
      }
      const std::size_t end = std::min(begin + grain, count);
      try {
        const obs::TraceScope block_scope("pool.block", obs::TraceCategory::kPool,
                                          "begin", begin, "count", end - begin);
        if (slot != nullptr) {
          const std::uint64_t t0 = obs::monotonic_ns();
          fn(begin, end, self);
          slot->busy_ns += obs::monotonic_ns() - t0;
          slot->tasks += end - begin;
          ++slot->blocks;
        } else {
          fn(begin, end, self);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        cursor.store(count, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (metrics != nullptr) {
    metrics->workers = std::move(worker_slots);
    metrics->wall_ns = obs::monotonic_ns() - wall_start;
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace fvc::sim
