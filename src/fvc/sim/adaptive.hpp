/// \file adaptive.hpp
/// \brief Adaptive Monte-Carlo: run trials until the estimate is tight.
///
/// Fixed trial budgets either waste work (deep in the covered/uncovered
/// phases the answer is obvious after a handful of trials) or under-resolve
/// the interesting mid-band points.  `estimate_events_adaptive` runs
/// batches of trials until the Wilson interval of the TARGET event is
/// narrower than `max_ci_width` (or the trial cap is reached), reusing the
/// deterministic seeding scheme so results remain reproducible.

#pragma once

#include <cstdint>

#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/trial.hpp"

namespace fvc::sim {

/// Which whole-grid event drives the stopping rule.
enum class TargetEvent {
  kNecessary,
  kFullView,
  kSufficient,
};

/// Stopping-rule configuration.
struct AdaptiveConfig {
  TargetEvent target = TargetEvent::kFullView;
  double max_ci_width = 0.1;    ///< stop when the Wilson 95% CI is narrower
  std::size_t batch = 20;       ///< trials per round
  std::size_t min_trials = 20;  ///< never stop before this many
  std::size_t max_trials = 2000;///< hard cap
  std::size_t threads = 0;      ///< 0 = default_thread_count()

  /// \throws std::invalid_argument on non-positive widths/batches or
  /// min > max.
  void validate() const;
};

/// Result: the standard estimates plus how many trials the rule used.
struct AdaptiveEstimate {
  GridEventsEstimate events;
  std::size_t trials_used = 0;
  bool converged = false;  ///< CI target met before the cap
};

/// Run batches of `cfg.base`-style trials (deterministically seeded from
/// `master_seed`, batch b covering trial indices [b*batch, (b+1)*batch))
/// until the stopping rule fires.
[[nodiscard]] AdaptiveEstimate estimate_events_adaptive(const TrialConfig& trial_cfg,
                                                        const AdaptiveConfig& cfg,
                                                        std::uint64_t master_seed);

}  // namespace fvc::sim
