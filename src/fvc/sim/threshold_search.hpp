/// \file threshold_search.hpp
/// \brief Empirical threshold location: bisect a Monte-Carlo event
/// probability for its crossing point.
///
/// Several experiments (the CONJ conjecture probe, calibration of
/// engineering margins) need "the q at which P(event) crosses p_target"
/// where the event probability is only available through simulation and
/// is monotone in q.  This utility wraps the noisy bisection: at each step
/// it estimates the probability at the midpoint with a fixed trial budget
/// and recurses on the side indicated.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fvc/obs/cancellation.hpp"

namespace fvc::sim {

/// A probability estimator at a scalar operating point q.  Implementations
/// should be deterministic given (q, seed).
using ProbabilityAt = std::function<double(double q, std::uint64_t seed)>;

/// Configuration of the bisection.
struct ThresholdSearchConfig {
  double q_lo = 0.0;       ///< operating point where the event surely fails
  double q_hi = 1.0;       ///< operating point where it surely succeeds
  double target = 0.5;     ///< probability level to locate
  int iterations = 8;      ///< bisection steps (resolution (q_hi-q_lo)/2^iters)
  std::uint64_t seed = 1;  ///< base seed; each step derives its own stream
  /// Optional observability: a fired `cancel` stops the bisection at the
  /// next step boundary and the current midpoint estimate is returned (a
  /// coarser but valid bracket); `progress` is reported per finished step
  /// as progress(steps done, iterations).
  obs::CancellationToken* cancel = nullptr;
  obs::ProgressFn progress;
};

/// Locate the crossing.  Requires target in (0,1), q_lo < q_hi,
/// iterations >= 1; throws std::invalid_argument otherwise.  The estimator
/// is assumed non-decreasing in q in expectation; Monte-Carlo noise makes
/// individual comparisons fallible, so use a trial budget giving standard
/// errors well under the local slope.
[[nodiscard]] double find_threshold(const ProbabilityAt& estimate,
                                    const ThresholdSearchConfig& config);

/// One finished repeat of a repeated threshold search.
struct ThresholdOutcome {
  std::uint64_t index = 0;  ///< repeat index (the shard unit)
  double q = 0.0;           ///< crossing point this repeat located
};

/// A *repeated* search: `repeats` independent bisections, repeat r seeded
/// with mix64(base.seed, r).  A single bisection is inherently sequential
/// (each step's bracket depends on the previous estimate), so the repeat —
/// not the step — is the unit that shards, checkpoints and resumes; the
/// spread across repeats doubles as the noise bar a single bisection
/// cannot provide.
struct ThresholdRepeatConfig {
  ThresholdSearchConfig base;   ///< bracket/target/iterations; base.seed is
                                ///< the master seed, per-repeat streams are
                                ///< derived from it
  std::size_t repeats = 1;
  /// When non-empty, run ONLY these repeat indices (a shard of
  /// [0, repeats), or the remainder of a resumed run).  Strictly
  /// increasing, each < repeats.
  std::span<const std::uint64_t> repeat_indices;
  /// Called after each finished repeat (the checkpoint hook).
  std::function<void(const ThresholdOutcome& outcome)> on_repeat;
};

/// Run the repeats sequentially; a fired base.cancel stops at the next
/// repeat boundary (finished repeats are returned; no partial repeat is
/// ever reported, because a half-bisected bracket is not a resumable
/// unit).  Outcomes depend only on (base config, repeat index), so
/// disjoint index subsets recombine into the unsharded run bit-exactly.
[[nodiscard]] std::vector<ThresholdOutcome> run_threshold_repeats(
    const ProbabilityAt& estimate, const ThresholdRepeatConfig& config);

}  // namespace fvc::sim
