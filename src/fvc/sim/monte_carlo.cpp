#include "fvc/sim/monte_carlo.hpp"

#include <stdexcept>
#include <vector>

#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

double EventEstimate::p() const {
  return stats::proportion(successes, trials);
}

stats::Interval EventEstimate::wilson(double z) const {
  return stats::wilson_interval(successes, trials, z);
}

GridEventsEstimate estimate_grid_events(const TrialConfig& cfg, std::size_t trials,
                                        std::uint64_t master_seed, std::size_t threads) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_grid_events: trials must be >= 1");
  }
  validate(cfg);
  std::vector<TrialEvents> results(trials);
  parallel_for(trials, threads, [&](std::size_t t) {
    results[t] = run_trial_events(cfg, stats::mix64(master_seed, t));
  });
  GridEventsEstimate est;
  est.necessary.trials = est.full_view.trials = est.sufficient.trials = trials;
  for (const TrialEvents& ev : results) {
    est.necessary.successes += ev.all_necessary ? 1 : 0;
    est.full_view.successes += ev.all_full_view ? 1 : 0;
    est.sufficient.successes += ev.all_sufficient ? 1 : 0;
  }
  return est;
}

FractionEstimate estimate_fractions(const TrialConfig& cfg, std::size_t trials,
                                    std::uint64_t master_seed, std::size_t threads) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_fractions: trials must be >= 1");
  }
  validate(cfg);
  struct PerTrial {
    core::RegionCoverageStats stats;
    std::size_t deployed = 0;
  };
  std::vector<PerTrial> results(trials);
  parallel_for(trials, threads, [&](std::size_t t) {
    const std::uint64_t seed = stats::mix64(master_seed, t);
    const core::Network net = deploy(cfg, seed);
    results[t].deployed = net.size();
    results[t].stats = core::evaluate_region(net, cfg.grid(), cfg.theta);
  });
  FractionEstimate est;
  for (const PerTrial& r : results) {
    est.covered_1.add(r.stats.fraction_covered_1());
    est.necessary.add(r.stats.fraction_necessary());
    est.full_view.add(r.stats.fraction_full_view());
    est.sufficient.add(r.stats.fraction_sufficient());
    est.k_covered.add(r.stats.fraction_k_covered());
    est.deployed_count.add(static_cast<double>(r.deployed));
  }
  return est;
}

}  // namespace fvc::sim
