#include "fvc/sim/monte_carlo.hpp"

#include <mutex>
#include <stdexcept>
#include <vector>

#include "fvc/core/grid_eval.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/obs/trace.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

double EventEstimate::p() const {
  return stats::proportion(successes, trials);
}

stats::Interval EventEstimate::wilson(double z) const {
  return stats::wilson_interval(successes, trials, z);
}

namespace {

/// Bare estimator: no cancellation/progress/metrics/shard machinery at all
/// — the fast path the default (empty) RunOptions resolve to.
GridEventsEstimate estimate_grid_events_bare(const TrialConfig& cfg,
                                             std::size_t trials,
                                             std::uint64_t master_seed,
                                             std::size_t threads) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_grid_events: trials must be >= 1");
  }
  validate(cfg);
  std::vector<TrialEvents> results(trials);
  // Grain 1 (one trial per claim): trial costs vary wildly between early
  // exits and full scans, so fine-grained claiming is what balances them.
  parallel_for_blocked(trials, threads, 1,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t t = begin; t < end; ++t) {
                           const obs::TraceScope scope(
                               "trial", obs::TraceCategory::kTrial, "index", t);
                           results[t] =
                               run_trial_events(cfg, stats::mix64(master_seed, t));
                         }
                       });
  GridEventsEstimate est;
  est.necessary.trials = est.full_view.trials = est.sufficient.trials = trials;
  for (const TrialEvents& ev : results) {
    est.necessary.successes += ev.all_necessary ? 1 : 0;
    est.full_view.successes += ev.all_full_view ? 1 : 0;
    est.sufficient.successes += ev.all_sufficient ? 1 : 0;
  }
  return est;
}

}  // namespace

GridEventsEstimate estimate_grid_events(const TrialConfig& cfg, std::size_t trials,
                                        std::uint64_t master_seed, std::size_t threads,
                                        const RunOptions& options) {
  if (options.cancel == nullptr && !options.progress && options.metrics == nullptr &&
      options.trial_indices.empty() && !options.on_trial && options.grain <= 1) {
    return estimate_grid_events_bare(cfg, trials, master_seed, threads);
  }
  if (trials == 0) {
    throw std::invalid_argument("estimate_grid_events: trials must be >= 1");
  }
  validate(cfg);
  const std::span<const std::uint64_t> subset = options.trial_indices;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (subset[i] >= trials || (i > 0 && subset[i] <= subset[i - 1])) {
      throw std::invalid_argument(
          "estimate_grid_events: trial_indices must be strictly increasing and < trials");
    }
  }
  // The work list this call actually runs: all of [0, trials), or the
  // caller's shard/remainder subset.  Work slot w runs trial index
  // subset[w], whose seed depends only on (master_seed, index) — never on
  // the slot — so partitions recombine bit-exactly.
  const std::size_t work = subset.empty() ? trials : subset.size();
  const bool metered = options.metrics != nullptr;
  const std::uint64_t run_start_ns = metered ? obs::monotonic_ns() : 0;
  struct Slot {
    TrialEvents events;
    TrialMetrics metrics;
    std::uint64_t ns = 0;
    bool ran = false;
  };
  std::vector<Slot> slots(work);
  std::mutex progress_mutex;
  std::size_t done = 0;
  PoolMetrics pool;
  const auto run_slot = [&](std::size_t w) {
    if (options.cancel != nullptr && options.cancel->stop_requested()) {
      return;  // the slot stays !ran; its seed is simply unused
    }
    Slot& slot = slots[w];
    const std::uint64_t t = subset.empty() ? w : subset[w];
    const std::uint64_t seed = stats::mix64(master_seed, t);
    {
      const obs::TraceScope scope("trial", obs::TraceCategory::kTrial,
                                  "index", t);
      if (metered) {
        const std::uint64_t t0 = obs::monotonic_ns();
        slot.events = run_trial_events(cfg, seed, &slot.metrics);
        slot.ns = obs::monotonic_ns() - t0;
      } else {
        slot.events = run_trial_events(cfg, seed);
      }
    }
    slot.ran = true;
    if (options.progress || options.on_trial) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      if (options.on_trial) {
        options.on_trial(t, slot.events);
      }
      ++done;
      if (options.progress) {
        options.progress(done, work);
        obs::trace_counter("trials_done", obs::TraceCategory::kTrial, done);
      }
    }
  };
  // Default grain 1 — see RunOptions::grain.  A cancelled run still
  // finishes only the blocks already claimed, so the cancellation latency
  // grows with the grain; that trade is the caller's via --grain.
  parallel_for_blocked(
      work, threads, options.grain == 0 ? 1 : options.grain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t w = begin; w < end; ++w) {
          run_slot(w);
        }
      },
      metered ? &pool : nullptr);

  GridEventsEstimate est;
  std::size_t ran = 0;
  std::size_t early_exits = 0;
  obs::DurationStats trial_time;
  TrialMetrics merged;
  for (const Slot& slot : slots) {
    if (!slot.ran) {
      continue;
    }
    ++ran;
    est.necessary.successes += slot.events.all_necessary ? 1 : 0;
    est.full_view.successes += slot.events.all_full_view ? 1 : 0;
    est.sufficient.successes += slot.events.all_sufficient ? 1 : 0;
    if (metered) {
      early_exits += slot.metrics.early_exit ? 1 : 0;
      trial_time.add(slot.ns);
      merged.merge(slot.metrics);
    }
  }
  est.necessary.trials = est.full_view.trials = est.sufficient.trials = ran;

  if (metered) {
    obs::MetricsNode& node = *options.metrics;
    // Wall time of the whole estimate on `node` itself; the child nodes
    // below carry *attributed* time (summed across workers), which may
    // exceed this wall time under parallelism.
    node.add_elapsed_ns(obs::monotonic_ns() - run_start_ns);
    obs::MetricsNode& trials_node = node.child("trials");
    trials_node.set("trials_requested", static_cast<double>(work));
    trials_node.set("trials_run", static_cast<double>(ran));
    trials_node.set("trials_cancelled", static_cast<double>(work - ran));
    trials_node.set("early_exit_necessary", static_cast<double>(early_exits));
    trials_node.set("rows_scanned", static_cast<double>(merged.rows_scanned));
    trials_node.set("trial_ns_min", static_cast<double>(trial_time.min()));
    trials_node.set("trial_ns_mean", trial_time.mean());
    trials_node.set("trial_ns_max", static_cast<double>(trial_time.max()));
    trials_node.add_elapsed_ns(trial_time.sum());
    obs::LogHistogram& trial_us = trials_node.histogram("trial_us");
    for (const Slot& slot : slots) {
      if (slot.ran) {
        trial_us.add(slot.ns / 1000);
      }
    }
    obs::MetricsNode& engine_node = node.child("engine");
    merged.engine.describe(engine_node);
    engine_node.set("build_ns", static_cast<double>(merged.engine_build_ns));
    // Attributed time (candidate binning summed across trials): without
    // this the engine node exports "elapsed_ns": 0 even though every trial
    // paid a construction cost.
    engine_node.add_elapsed_ns(merged.engine_build_ns);
    // The variant captured from the trial engines themselves (every trial
    // dispatches the same one: pin/env are fixed for the run).  Absent only
    // when cancellation preceded every trial — then no engine existed and
    // re-resolving here could even throw, discarding completed results.
    if (merged.kernel.has_value()) {
      core::describe_kernel_dispatch(*merged.kernel, engine_node);
    }
    describe(pool, node.child("pool"));
  }
  return est;
}

std::vector<double> encode_trial_events(const TrialEvents& events) {
  return {events.all_necessary ? 1.0 : 0.0, events.all_full_view ? 1.0 : 0.0,
          events.all_sufficient ? 1.0 : 0.0};
}

TrialEvents decode_trial_events(std::span<const double> payload) {
  if (payload.size() != 3) {
    throw std::invalid_argument("decode_trial_events: payload must hold 3 values");
  }
  for (const double v : payload) {
    if (v != 0.0 && v != 1.0) {
      throw std::invalid_argument("decode_trial_events: payload values must be 0 or 1");
    }
  }
  TrialEvents events;
  events.all_necessary = payload[0] == 1.0;
  events.all_full_view = payload[1] == 1.0;
  events.all_sufficient = payload[2] == 1.0;
  return events;
}

GridEventsEstimate aggregate_grid_events(std::span<const TrialEvents> events) {
  GridEventsEstimate est;
  est.necessary.trials = est.full_view.trials = est.sufficient.trials = events.size();
  for (const TrialEvents& ev : events) {
    est.necessary.successes += ev.all_necessary ? 1 : 0;
    est.full_view.successes += ev.all_full_view ? 1 : 0;
    est.sufficient.successes += ev.all_sufficient ? 1 : 0;
  }
  return est;
}

FractionEstimate estimate_fractions(const TrialConfig& cfg, std::size_t trials,
                                    std::uint64_t master_seed, std::size_t threads) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_fractions: trials must be >= 1");
  }
  validate(cfg);
  struct PerTrial {
    core::RegionCoverageStats stats;
    std::size_t deployed = 0;
  };
  std::vector<PerTrial> results(trials);
  // Grain 1: each trial is a whole deployment + grid scan, which dwarfs a
  // cursor claim; per-trial seeding keeps the slots order-independent.
  parallel_for_blocked(trials, threads, 1,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t t = begin; t < end; ++t) {
                           const obs::TraceScope scope(
                               "trial", obs::TraceCategory::kTrial, "index", t);
                           const std::uint64_t seed = stats::mix64(master_seed, t);
                           const core::Network net = deploy(cfg, seed);
                           results[t].deployed = net.size();
                           results[t].stats =
                               core::evaluate_region(net, cfg.grid(), cfg.theta);
                         }
                       });
  FractionEstimate est;
  for (const PerTrial& r : results) {
    est.covered_1.add(r.stats.fraction_covered_1());
    est.necessary.add(r.stats.fraction_necessary());
    est.full_view.add(r.stats.fraction_full_view());
    est.sufficient.add(r.stats.fraction_sufficient());
    est.k_covered.add(r.stats.fraction_k_covered());
    est.deployed_count.add(static_cast<double>(r.deployed));
  }
  return est;
}

}  // namespace fvc::sim
