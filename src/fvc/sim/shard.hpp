/// \file shard.hpp
/// \brief Round-robin sharding of Monte-Carlo unit indices.
///
/// Every statistical run in the sim layer is a fold over independent
/// *units* — trials (mix64-seeded per index), phase-scan points, threshold
/// repeats.  Because each unit's outcome depends only on (master seed,
/// unit index), any partition of the index space can run in separate
/// processes and later merge to bitwise-identical statistics.  A ShardSpec
/// names one cell of that partition: shard `index` of `count` owns the
/// units u with u % count == index.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fvc::sim {

/// One cell of a round-robin partition of unit indices.
struct ShardSpec {
  std::size_t index = 0;  ///< which shard this process is, in [0, count)
  std::size_t count = 1;  ///< total number of shards; 1 = unsharded

  [[nodiscard]] bool owns(std::uint64_t unit) const { return unit % count == index; }
  [[nodiscard]] bool is_sharded() const { return count > 1; }
};

/// Throws std::invalid_argument unless count >= 1 and index < count.
void validate(const ShardSpec& shard);

/// The unit indices in [0, total) this shard owns, minus `skip` (sorted
/// unique indices of already-completed units, e.g. from a resumed
/// checkpoint).  Returned in increasing order.
[[nodiscard]] std::vector<std::uint64_t> owned_units(const ShardSpec& shard,
                                                     std::uint64_t total,
                                                     std::span<const std::uint64_t> skip);

}  // namespace fvc::sim
