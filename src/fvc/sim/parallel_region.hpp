/// \file parallel_region.hpp
/// \brief Block-parallel batched grid evaluation for single deployments.
///
/// The Monte-Carlo estimators parallelize over *trials*, so per-trial grid
/// scans stay serial.  Single-deployment workloads (the CLI tool, the CSA
/// figure benches, interactive analysis of one large network) instead want
/// parallelism *within* one grid scan.  These entry points batch the
/// `GridEvalEngine` over contiguous row blocks through
/// `sim::parallel_for_blocked`: workers claim `grain` rows per atomic
/// cursor claim (grain 0 = `choose_grain(rows, threads)`), evaluate the
/// block through one engine call (`GridEvalEngine::block_stats` — no
/// per-row callback indirection), and write one result slot per block.
/// Block slots are reduced in block order, which is exactly row order —
/// so the result is bit-identical to the serial scan for every thread
/// count and grain (the determinism contract of monte_carlo.hpp, extended
/// to the batched path; locked by tests/sim/test_determinism.cpp and
/// tests/sim/test_parallel_identity.cpp).

#pragma once

#include <cstddef>

#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"
#include "fvc/core/region_coverage.hpp"

namespace fvc::obs {
class MetricsNode;  // fvc/obs/run_metrics.hpp
}

namespace fvc::sim {

/// Block-parallel `core::evaluate_region`.  Bit-identical to the serial
/// (and scalar) evaluation for any `threads` >= 1 and any `grain`
/// (0 = automatic: `choose_grain(rows, threads)`), whether or not metrics
/// are collected.
///
/// `metrics` (default null: no collection, no clock calls) selects the
/// metered path: identical statistics (same engine, same block merge), plus
/// a filled subtree under the node:
///   engine  — static shape (bin occupancy, build span) and the merged
///             gather counters (candidate histogram, fallbacks)
///   pool    — worker busy/idle time, block/task counts and the grain of
///             the row loop
///   scan    — span over the whole row scan
/// Gather counters live in per-worker slots merged in worker order; the
/// totals are order-independent sums, so the exported values are
/// deterministic for any thread count and grain.
[[nodiscard]] core::RegionCoverageStats evaluate_region_parallel(
    const core::Network& net, const core::DenseGrid& grid, double theta,
    std::size_t threads, std::size_t grain = 0,
    obs::MetricsNode* metrics = nullptr);

/// Whole-grid events of one deployment (the H_N / full-view / H_S bits).
struct GridEvents {
  bool all_necessary = false;
  bool all_full_view = false;
  bool all_sufficient = false;
};

/// Block-parallel whole-grid event evaluation with cooperative early exit:
/// once some row fails the necessary condition the remaining rows are
/// skipped (the result is already {false, false, false}, matching
/// `run_trial_events` semantics).  Bit-identical for any thread count and
/// grain.
[[nodiscard]] GridEvents grid_events_parallel(const core::Network& net,
                                              const core::DenseGrid& grid, double theta,
                                              std::size_t threads,
                                              std::size_t grain = 0);

}  // namespace fvc::sim
