/// \file parallel_region.hpp
/// \brief Row-parallel batched grid evaluation for single deployments.
///
/// The Monte-Carlo estimators parallelize over *trials*, so per-trial grid
/// scans stay serial.  Single-deployment workloads (the CLI tool, the CSA
/// figure benches, interactive analysis of one large network) instead want
/// parallelism *within* one grid scan.  These entry points batch the
/// `GridEvalEngine` over grid rows through `sim::parallel_for`, writing
/// per-row results into preallocated slots and reducing them in row order —
/// so the result is bit-identical for every thread count (the determinism
/// contract of monte_carlo.hpp, extended to the batched path; locked by
/// tests/sim/test_determinism.cpp).

#pragma once

#include <cstddef>

#include "fvc/core/grid.hpp"
#include "fvc/core/network.hpp"
#include "fvc/core/region_coverage.hpp"

namespace fvc::obs {
class MetricsNode;  // fvc/obs/run_metrics.hpp
}

namespace fvc::sim {

/// Row-parallel `core::evaluate_region`.  Bit-identical to the serial
/// (and scalar) evaluation for any `threads` >= 1.
[[nodiscard]] core::RegionCoverageStats evaluate_region_parallel(
    const core::Network& net, const core::DenseGrid& grid, double theta,
    std::size_t threads);

/// Metered variant: identical statistics (same engine, same row merge),
/// plus a filled metrics subtree under `node`:
///   engine  — static shape (bin occupancy, build span) and the merged
///             per-row gather counters (candidate histogram, fallbacks)
///   pool    — worker busy/idle time and task counts of the row loop
///   scan    — span over the whole row scan
/// Per-row counters live in per-row slots merged in row order, so the
/// exported totals are deterministic for any thread count.
[[nodiscard]] core::RegionCoverageStats evaluate_region_parallel_metered(
    const core::Network& net, const core::DenseGrid& grid, double theta,
    std::size_t threads, obs::MetricsNode& node);

/// Whole-grid events of one deployment (the H_N / full-view / H_S bits).
struct GridEvents {
  bool all_necessary = false;
  bool all_full_view = false;
  bool all_sufficient = false;
};

/// Row-parallel whole-grid event evaluation with cooperative early exit:
/// once some row fails the necessary condition the remaining rows are
/// skipped (the result is already {false, false, false}, matching
/// `run_trial_events` semantics).  Bit-identical for any thread count.
[[nodiscard]] GridEvents grid_events_parallel(const core::Network& net,
                                              const core::DenseGrid& grid, double theta,
                                              std::size_t threads);

}  // namespace fvc::sim
