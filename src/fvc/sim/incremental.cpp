#include "fvc/sim/incremental.hpp"

#include <stdexcept>
#include <vector>

#include "fvc/core/full_view.hpp"
#include "fvc/core/network.hpp"
#include "fvc/core/region_coverage.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

void IncrementalConfig::validate() const {
  core::validate_theta(theta);
  if (batch == 0) {
    throw std::invalid_argument("IncrementalConfig: batch must be >= 1");
  }
  if (max_cameras < batch) {
    throw std::invalid_argument("IncrementalConfig: max_cameras must be >= batch");
  }
  if (grid_side == 0) {
    throw std::invalid_argument("IncrementalConfig: grid_side must be >= 1");
  }
}

IncrementalResult provision_until_covered(const IncrementalConfig& config,
                                          std::uint64_t seed) {
  config.validate();
  stats::Pcg32 rng = stats::make_child_rng(seed, 0x1AC5);
  const core::DenseGrid grid(config.grid_side);
  std::vector<core::Camera> fleet;
  IncrementalResult result;
  while (fleet.size() < config.max_cameras) {
    const auto batch = deploy::deploy_uniform(config.profile, config.batch, rng);
    fleet.insert(fleet.end(), batch.begin(), batch.end());
    ++result.batches_deployed;
    const core::Network net(fleet);
    if (core::grid_all_full_view(net, grid, config.theta)) {
      result.population = fleet.size();
      return result;
    }
  }
  return result;
}

}  // namespace fvc::sim
