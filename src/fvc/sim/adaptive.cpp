#include "fvc/sim/adaptive.hpp"

#include <stdexcept>
#include <vector>

#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

void AdaptiveConfig::validate() const {
  if (!(max_ci_width > 0.0) || max_ci_width >= 1.0) {
    throw std::invalid_argument("AdaptiveConfig: max_ci_width must be in (0, 1)");
  }
  if (batch == 0) {
    throw std::invalid_argument("AdaptiveConfig: batch must be >= 1");
  }
  if (min_trials == 0 || min_trials > max_trials) {
    throw std::invalid_argument("AdaptiveConfig: need 1 <= min_trials <= max_trials");
  }
}

AdaptiveEstimate estimate_events_adaptive(const TrialConfig& trial_cfg,
                                          const AdaptiveConfig& cfg,
                                          std::uint64_t master_seed) {
  cfg.validate();
  validate(trial_cfg);
  const std::size_t threads = cfg.threads == 0 ? default_thread_count() : cfg.threads;

  AdaptiveEstimate result;
  std::size_t next_trial = 0;
  while (next_trial < cfg.max_trials) {
    const std::size_t count = std::min(cfg.batch, cfg.max_trials - next_trial);
    std::vector<TrialEvents> batch(count);
    parallel_for_blocked(count, threads, 1,
                         [&](std::size_t begin, std::size_t end, std::size_t) {
                           for (std::size_t i = begin; i < end; ++i) {
                             batch[i] = run_trial_events(
                                 trial_cfg, stats::mix64(master_seed, next_trial + i));
                           }
                         });
    next_trial += count;
    for (const TrialEvents& ev : batch) {
      result.events.necessary.successes += ev.all_necessary ? 1 : 0;
      result.events.full_view.successes += ev.all_full_view ? 1 : 0;
      result.events.sufficient.successes += ev.all_sufficient ? 1 : 0;
    }
    result.events.necessary.trials = next_trial;
    result.events.full_view.trials = next_trial;
    result.events.sufficient.trials = next_trial;

    if (next_trial < cfg.min_trials) {
      continue;
    }
    const EventEstimate& target = cfg.target == TargetEvent::kNecessary
                                      ? result.events.necessary
                                      : cfg.target == TargetEvent::kFullView
                                            ? result.events.full_view
                                            : result.events.sufficient;
    if (target.wilson().width() <= cfg.max_ci_width) {
      result.converged = true;
      break;
    }
  }
  result.trials_used = next_trial;
  return result;
}

}  // namespace fvc::sim
