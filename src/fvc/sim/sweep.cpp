#include "fvc/sim/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fvc/obs/trace.hpp"

namespace fvc::sim {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("linspace: count must be >= 1");
  }
  if (!(lo <= hi)) {
    throw std::invalid_argument("linspace: lo must be <= hi");
  }
  if (count == 1) {
    return {lo};
  }
  std::vector<double> out;
  out.reserve(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(i + 1 == count ? hi : lo + static_cast<double>(i) * step);
  }
  return out;
}

std::vector<double> geomspace(double lo, double hi, std::size_t count) {
  if (!(lo > 0.0) || !(hi >= lo)) {
    throw std::invalid_argument("geomspace: need 0 < lo <= hi");
  }
  if (count == 0) {
    throw std::invalid_argument("geomspace: count must be >= 1");
  }
  if (count == 1) {
    return {lo};
  }
  std::vector<double> out;
  out.reserve(count);
  const double ratio = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(i + 1 == count ? hi : lo * std::exp(static_cast<double>(i) * ratio));
  }
  return out;
}

std::vector<std::size_t> geomspace_sizes(std::size_t lo, std::size_t hi, std::size_t count) {
  if (lo == 0) {
    throw std::invalid_argument("geomspace_sizes: lo must be >= 1");
  }
  const auto values = geomspace(static_cast<double>(lo), static_cast<double>(hi), count);
  std::vector<std::size_t> out;
  out.reserve(values.size());
  for (double v : values) {
    const auto r = static_cast<std::size_t>(std::llround(v));
    if (out.empty() || out.back() != r) {
      out.push_back(r);
    }
  }
  return out;
}

std::size_t run_sweep(std::size_t count, const SweepOptions& options,
                      const std::function<void(std::size_t)>& fn) {
  std::size_t done = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (options.cancel != nullptr && options.cancel->stop_requested()) {
      break;
    }
    {
      const obs::TraceScope scope("sweep.point", obs::TraceCategory::kScan,
                                  "index", i);
      fn(i);
    }
    ++done;
    if (options.progress) {
      options.progress(done, count);
    }
  }
  return done;
}

}  // namespace fvc::sim
