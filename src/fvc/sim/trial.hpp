/// \file trial.hpp
/// \brief One Monte-Carlo trial: deploy a network, evaluate the grid.

#pragma once

#include <cstdint>
#include <optional>

#include "fvc/core/camera_group.hpp"
#include "fvc/core/grid.hpp"
#include "fvc/core/grid_eval.hpp"
#include "fvc/core/network.hpp"
#include "fvc/core/region_coverage.hpp"

namespace fvc::sim {

/// How sensors are placed.
enum class Deployment {
  kUniform,  ///< exactly n sensors, i.i.d. uniform (Sections III/IV)
  kPoisson,  ///< Poisson(n) sensors, thinned groups (Section V)
};

/// Everything a trial needs except the seed.
struct TrialConfig {
  /// Camera population (defaults to a small homogeneous placeholder so the
  /// struct is default-constructible; real configs always overwrite it).
  core::HeterogeneousProfile profile = core::HeterogeneousProfile::homogeneous(0.1, 1.0);
  std::size_t n = 0;                   ///< population size / Poisson density
  double theta = 0.0;                  ///< effective angle
  Deployment deployment = Deployment::kUniform;
  /// Grid side override; when absent the paper's m = n log n rule is used.
  std::optional<std::size_t> grid_side;

  /// The grid this config evaluates on.
  [[nodiscard]] core::DenseGrid grid() const;
};

/// Validate a config (n >= 3, theta in (0, pi]); throws on violation.
void validate(const TrialConfig& cfg);

/// Deploy one network for this config and seed.
[[nodiscard]] core::Network deploy(const TrialConfig& cfg, std::uint64_t seed);

/// Whole-grid event bits for one trial.  Because the point predicates nest
/// (sufficient => full view => necessary), a single grid pass with early
/// exit computes all three.
struct TrialEvents {
  bool all_necessary = false;
  bool all_full_view = false;
  bool all_sufficient = false;
};

/// Run one trial and report the whole-grid events.
[[nodiscard]] TrialEvents run_trial_events(const TrialConfig& cfg, std::uint64_t seed);

/// Per-trial observability record (see fvc/obs): the engine's gather
/// counters plus the scan shape.  Results are unaffected by collection.
struct TrialMetrics {
  core::GridEvalCounters engine;      ///< fused-kernel counters of the scan
  std::uint64_t engine_build_ns = 0;  ///< candidate-binning time
  std::uint64_t rows_scanned = 0;     ///< rows visited before any early exit
  bool early_exit = false;            ///< necessary condition failed mid-scan
  /// Kernel variant the trial's engine dispatched; nullopt until a trial
  /// runs.  Recorded so run-level exports name the variant the trials
  /// actually used instead of re-resolving (which re-reads the
  /// environment and can throw) after the results are in.
  std::optional<core::KernelVariant> kernel;

  void merge(const TrialMetrics& other) {
    engine.merge(other.engine);
    engine_build_ns += other.engine_build_ns;
    rows_scanned += other.rows_scanned;
    early_exit = early_exit || other.early_exit;
    if (!kernel.has_value()) {
      kernel = other.kernel;
    }
  }
};

/// Metered variant: when `metrics` is non-null, fills it with the trial's
/// engine counters.  Events are identical to the unmetered overload.
[[nodiscard]] TrialEvents run_trial_events(const TrialConfig& cfg, std::uint64_t seed,
                                           TrialMetrics* metrics);

/// Run one trial and report the full per-point aggregate counts (no early
/// exit); used for the fraction/expected-area experiments.
[[nodiscard]] core::RegionCoverageStats run_trial_region(const TrialConfig& cfg,
                                                         std::uint64_t seed);

}  // namespace fvc::sim
