/// \file incremental.hpp
/// \brief Incremental provisioning: grow a deployment until the region is
/// full-view covered, measuring the EMPIRICAL population requirement.
///
/// The CSA theorems answer the provisioning question asymptotically; a
/// field team deploys in batches and stops when the audit passes.  This
/// simulates exactly that and reports the stopping population, which the
/// PROVISION bench compares against the Theorem 1/2 predictions — the
/// finite-n sharpness check of the paper's central result.

#pragma once

#include <cstdint>
#include <optional>

#include "fvc/core/camera_group.hpp"
#include "fvc/core/grid.hpp"

namespace fvc::sim {

/// Incremental deployment parameters.
struct IncrementalConfig {
  /// Hardware shape: fractions/fov/radius-ratios are kept; the absolute
  /// sensing areas are used as-is (no rescaling).
  core::HeterogeneousProfile profile = core::HeterogeneousProfile::homogeneous(0.1, 1.0);
  double theta = 1.0;            ///< full-view effective angle
  std::size_t batch = 25;        ///< cameras added per round
  std::size_t max_cameras = 100000;  ///< give-up bound
  std::size_t grid_side = 24;    ///< audit grid resolution

  /// \throws std::invalid_argument on bad theta/batch/limits.
  void validate() const;
};

/// Result of one incremental run.
struct IncrementalResult {
  /// Population at which the audit first passed; empty when max_cameras
  /// was reached still uncovered.
  std::optional<std::size_t> population;
  std::size_t batches_deployed = 0;
};

/// Deploy `batch` uniformly-random cameras per round until the grid is
/// full-view covered with `theta` (or the cap is hit).  Deterministic for
/// a fixed seed.
[[nodiscard]] IncrementalResult provision_until_covered(const IncrementalConfig& config,
                                                        std::uint64_t seed);

}  // namespace fvc::sim
