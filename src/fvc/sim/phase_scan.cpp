#include "fvc/sim/phase_scan.hpp"

#include <stdexcept>
#include <string>

#include "fvc/analysis/csa.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/sim/sweep.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

std::vector<PhasePoint> run_phase_scan(const PhaseScanConfig& cfg) {
  if (cfg.q_values.empty()) {
    throw std::invalid_argument("run_phase_scan: need at least one q value");
  }
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_phase_scan: trials must be >= 1");
  }
  for (const double q : cfg.q_values) {
    if (!(q > 0.0)) {
      throw std::invalid_argument("run_phase_scan: q values must be positive");
    }
  }
  validate(cfg.base);
  const std::size_t threads =
      cfg.threads == 0 ? default_thread_count() : cfg.threads;
  const double csa_n =
      analysis::csa_necessary(static_cast<double>(cfg.base.n), cfg.base.theta);
  const std::size_t total_trials = cfg.q_values.size() * cfg.trials;

  std::vector<PhasePoint> points;
  points.reserve(cfg.q_values.size());
  SweepOptions sweep;
  sweep.cancel = cfg.cancel;  // cancellation is polled per *point* here and
                              // per *trial* inside estimate_grid_events
  run_sweep(cfg.q_values.size(), sweep, [&](std::size_t i) {
    const double q = cfg.q_values[i];
    TrialConfig point_cfg = cfg.base;
    point_cfg.profile = cfg.base.profile.with_weighted_area(q * csa_n);
    PhasePoint point;
    point.q = q;
    point.weighted_area = point_cfg.profile.weighted_sensing_area();
    RunOptions options;
    options.cancel = cfg.cancel;
    if (cfg.progress) {
      // Fine-grained, scan-wide progress: trials from earlier points plus
      // the trials done inside the current one.
      options.progress = [&cfg, i, total_trials](std::size_t done, std::size_t) {
        cfg.progress(i * cfg.trials + done, total_trials);
      };
    }
    if (cfg.metrics != nullptr) {
      obs::MetricsNode& point_node = cfg.metrics->child("q_" + std::to_string(i));
      point_node.set("q", q);
      options.metrics = &point_node;
    }
    point.events = estimate_grid_events(point_cfg, cfg.trials,
                                        stats::mix64(cfg.master_seed, i), threads,
                                        options);
    points.push_back(point);
  });
  return points;
}

}  // namespace fvc::sim
