#include "fvc/sim/phase_scan.hpp"

#include <stdexcept>
#include <string>

#include "fvc/analysis/csa.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

std::vector<PhasePoint> run_phase_scan(const PhaseScanConfig& cfg) {
  if (cfg.q_values.empty()) {
    throw std::invalid_argument("run_phase_scan: need at least one q value");
  }
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_phase_scan: trials must be >= 1");
  }
  validate(cfg.base);
  const std::size_t threads =
      cfg.threads == 0 ? default_thread_count() : cfg.threads;
  const double csa_n =
      analysis::csa_necessary(static_cast<double>(cfg.base.n), cfg.base.theta);

  std::vector<PhasePoint> points;
  points.reserve(cfg.q_values.size());
  for (std::size_t i = 0; i < cfg.q_values.size(); ++i) {
    const double q = cfg.q_values[i];
    if (!(q > 0.0)) {
      throw std::invalid_argument("run_phase_scan: q values must be positive");
    }
    if (cfg.cancel != nullptr && cfg.cancel->stop_requested()) {
      break;  // partial scan: every finished point is already in `points`
    }
    TrialConfig point_cfg = cfg.base;
    point_cfg.profile = cfg.base.profile.with_weighted_area(q * csa_n);
    PhasePoint point;
    point.q = q;
    point.weighted_area = point_cfg.profile.weighted_sensing_area();
    RunOptions options;
    options.cancel = cfg.cancel;
    if (cfg.metrics != nullptr) {
      obs::MetricsNode& point_node = cfg.metrics->child("q_" + std::to_string(i));
      point_node.set("q", q);
      options.metrics = &point_node;
    }
    point.events = estimate_grid_events(point_cfg, cfg.trials,
                                        stats::mix64(cfg.master_seed, i), threads,
                                        options);
    points.push_back(point);
  }
  return points;
}

}  // namespace fvc::sim
