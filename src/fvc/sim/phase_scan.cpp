#include "fvc/sim/phase_scan.hpp"

#include <stdexcept>
#include <string>

#include "fvc/analysis/csa.hpp"
#include "fvc/obs/run_metrics.hpp"
#include "fvc/sim/sweep.hpp"
#include "fvc/sim/thread_pool.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

std::vector<PhasePoint> run_phase_scan(const PhaseScanConfig& cfg) {
  if (cfg.q_values.empty()) {
    throw std::invalid_argument("run_phase_scan: need at least one q value");
  }
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_phase_scan: trials must be >= 1");
  }
  for (const double q : cfg.q_values) {
    if (!(q > 0.0)) {
      throw std::invalid_argument("run_phase_scan: q values must be positive");
    }
  }
  for (std::size_t i = 0; i < cfg.point_indices.size(); ++i) {
    if (cfg.point_indices[i] >= cfg.q_values.size() ||
        (i > 0 && cfg.point_indices[i] <= cfg.point_indices[i - 1])) {
      throw std::invalid_argument(
          "run_phase_scan: point_indices must be strictly increasing and "
          "< q_values.size()");
    }
  }
  validate(cfg.base);
  const std::size_t threads =
      cfg.threads == 0 ? default_thread_count() : cfg.threads;
  const double csa_n =
      analysis::csa_necessary(static_cast<double>(cfg.base.n), cfg.base.theta);
  // The points this call actually scans (all of them, or a shard/resume
  // subset); point i keeps seed mix64(master_seed, i) either way.
  const std::size_t n_points =
      cfg.point_indices.empty() ? cfg.q_values.size() : cfg.point_indices.size();
  const std::size_t total_trials = n_points * cfg.trials;

  std::vector<PhasePoint> points;
  points.reserve(n_points);
  SweepOptions sweep;
  sweep.cancel = cfg.cancel;  // cancellation is polled per *point* here and
                              // per *trial* inside estimate_grid_events
  run_sweep(n_points, sweep, [&](std::size_t w) {
    const std::size_t i =
        cfg.point_indices.empty() ? w : static_cast<std::size_t>(cfg.point_indices[w]);
    const double q = cfg.q_values[i];
    TrialConfig point_cfg = cfg.base;
    point_cfg.profile = cfg.base.profile.with_weighted_area(q * csa_n);
    PhasePoint point;
    point.index = i;
    point.q = q;
    point.weighted_area = point_cfg.profile.weighted_sensing_area();
    RunOptions options;
    options.cancel = cfg.cancel;
    if (cfg.progress) {
      // Fine-grained, scan-wide progress: trials from earlier points plus
      // the trials done inside the current one.
      options.progress = [&cfg, w, total_trials](std::size_t done, std::size_t) {
        cfg.progress(w * cfg.trials + done, total_trials);
      };
    }
    if (cfg.metrics != nullptr) {
      obs::MetricsNode& point_node = cfg.metrics->child("q_" + std::to_string(i));
      point_node.set("q", q);
      options.metrics = &point_node;
    }
    point.events = estimate_grid_events(point_cfg, cfg.trials,
                                        stats::mix64(cfg.master_seed, i), threads,
                                        options);
    // A point interrupted mid-estimate must not look finished: skip the
    // checkpoint hook (and the result row) unless every trial ran.
    if (point.events.full_view.trials != cfg.trials) {
      return;
    }
    if (cfg.on_point) {
      cfg.on_point(point);
    }
    points.push_back(point);
  });
  return points;
}

std::vector<double> encode_phase_point(const PhasePoint& point) {
  return {point.q,
          point.weighted_area,
          static_cast<double>(point.events.necessary.successes),
          static_cast<double>(point.events.necessary.trials),
          static_cast<double>(point.events.full_view.successes),
          static_cast<double>(point.events.full_view.trials),
          static_cast<double>(point.events.sufficient.successes),
          static_cast<double>(point.events.sufficient.trials)};
}

PhasePoint decode_phase_point(std::uint64_t index, std::span<const double> payload) {
  if (payload.size() != 8) {
    throw std::invalid_argument("decode_phase_point: payload must hold 8 values");
  }
  for (std::size_t i = 2; i < 8; ++i) {
    if (payload[i] < 0.0 || payload[i] != static_cast<double>(
                                              static_cast<std::uint64_t>(payload[i]))) {
      throw std::invalid_argument(
          "decode_phase_point: counts must be non-negative integers");
    }
  }
  PhasePoint point;
  point.index = static_cast<std::size_t>(index);
  point.q = payload[0];
  point.weighted_area = payload[1];
  point.events.necessary.successes = static_cast<std::size_t>(payload[2]);
  point.events.necessary.trials = static_cast<std::size_t>(payload[3]);
  point.events.full_view.successes = static_cast<std::size_t>(payload[4]);
  point.events.full_view.trials = static_cast<std::size_t>(payload[5]);
  point.events.sufficient.successes = static_cast<std::size_t>(payload[6]);
  point.events.sufficient.trials = static_cast<std::size_t>(payload[7]);
  return point;
}

}  // namespace fvc::sim
