#include "fvc/sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fvc::sim {

void validate(const ShardSpec& shard) {
  if (shard.count == 0) {
    throw std::invalid_argument("ShardSpec: count must be >= 1");
  }
  if (shard.index >= shard.count) {
    throw std::invalid_argument("ShardSpec: index " + std::to_string(shard.index) +
                                " out of range for count " + std::to_string(shard.count));
  }
}

std::vector<std::uint64_t> owned_units(const ShardSpec& shard, std::uint64_t total,
                                       std::span<const std::uint64_t> skip) {
  validate(shard);
  std::vector<std::uint64_t> units;
  units.reserve(static_cast<std::size_t>(total / shard.count) + 1);
  for (std::uint64_t u = shard.index; u < total; u += shard.count) {
    if (!std::binary_search(skip.begin(), skip.end(), u)) {
      units.push_back(u);
    }
  }
  return units;
}

}  // namespace fvc::sim
