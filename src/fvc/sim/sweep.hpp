/// \file sweep.hpp
/// \brief Parameter-grid helpers shared by the experiment binaries.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "fvc/obs/cancellation.hpp"

namespace fvc::sim {

/// `count` evenly spaced values from lo to hi inclusive.
/// \pre count >= 2, lo <= hi — except count == 1, which returns {lo}.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` geometrically spaced values from lo to hi inclusive.
/// \pre lo > 0, hi >= lo
[[nodiscard]] std::vector<double> geomspace(double lo, double hi, std::size_t count);

/// Geometric integer grid from lo to hi (both included, deduplicated after
/// rounding); used for population-size sweeps like Figure 8's n axis.
[[nodiscard]] std::vector<std::size_t> geomspace_sizes(std::size_t lo, std::size_t hi,
                                                       std::size_t count);

/// Observability hooks shared by every point-by-point sweep loop.
struct SweepOptions {
  /// Polled before each point; a fired token stops the sweep at a point
  /// boundary (finished points are kept).
  obs::CancellationToken* cancel = nullptr;
  /// Invoked after each finished point as progress(done, count).
  obs::ProgressFn progress;
};

/// Run `fn(i)` for i in [0, count), the canonical outer loop of phase
/// scans and threshold searches: each point gets a "sweep.point" trace
/// slice, the token is polled between points, and progress is reported
/// after each point.  Returns the number of points completed (== count
/// unless cancelled).
std::size_t run_sweep(std::size_t count, const SweepOptions& options,
                      const std::function<void(std::size_t)>& fn);

}  // namespace fvc::sim
