/// \file sweep.hpp
/// \brief Parameter-grid helpers shared by the experiment binaries.

#pragma once

#include <cstddef>
#include <vector>

namespace fvc::sim {

/// `count` evenly spaced values from lo to hi inclusive.
/// \pre count >= 2, lo <= hi — except count == 1, which returns {lo}.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` geometrically spaced values from lo to hi inclusive.
/// \pre lo > 0, hi >= lo
[[nodiscard]] std::vector<double> geomspace(double lo, double hi, std::size_t count);

/// Geometric integer grid from lo to hi (both included, deduplicated after
/// rounding); used for population-size sweeps like Figure 8's n axis.
[[nodiscard]] std::vector<std::size_t> geomspace_sizes(std::size_t lo, std::size_t hi,
                                                       std::size_t count);

}  // namespace fvc::sim
