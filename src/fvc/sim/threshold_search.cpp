#include "fvc/sim/threshold_search.hpp"

#include <stdexcept>

#include "fvc/obs/trace.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

double find_threshold(const ProbabilityAt& estimate, const ThresholdSearchConfig& config) {
  if (!(config.q_lo < config.q_hi)) {
    throw std::invalid_argument("find_threshold: need q_lo < q_hi");
  }
  if (!(config.target > 0.0) || !(config.target < 1.0)) {
    throw std::invalid_argument("find_threshold: target must be in (0, 1)");
  }
  if (config.iterations < 1) {
    throw std::invalid_argument("find_threshold: need at least one iteration");
  }
  if (!estimate) {
    throw std::invalid_argument("find_threshold: estimator must be callable");
  }
  double lo = config.q_lo;
  double hi = config.q_hi;
  for (int iter = 0; iter < config.iterations; ++iter) {
    if (config.cancel != nullptr && config.cancel->stop_requested()) {
      break;  // return the bracket narrowed so far
    }
    const double mid = 0.5 * (lo + hi);
    double p = 0.0;
    {
      const obs::TraceScope scope("threshold.step", obs::TraceCategory::kScan,
                                  "step", static_cast<std::uint64_t>(iter));
      p = estimate(mid, stats::mix64(config.seed, static_cast<std::uint64_t>(iter)));
    }
    if (p < config.target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (config.progress) {
      config.progress(static_cast<std::size_t>(iter) + 1,
                      static_cast<std::size_t>(config.iterations));
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<ThresholdOutcome> run_threshold_repeats(const ProbabilityAt& estimate,
                                                    const ThresholdRepeatConfig& config) {
  if (config.repeats == 0) {
    throw std::invalid_argument("run_threshold_repeats: repeats must be >= 1");
  }
  for (std::size_t i = 0; i < config.repeat_indices.size(); ++i) {
    if (config.repeat_indices[i] >= config.repeats ||
        (i > 0 && config.repeat_indices[i] <= config.repeat_indices[i - 1])) {
      throw std::invalid_argument(
          "run_threshold_repeats: repeat_indices must be strictly increasing and "
          "< repeats");
    }
  }
  const std::size_t count = config.repeat_indices.empty()
                                ? config.repeats
                                : config.repeat_indices.size();
  std::vector<ThresholdOutcome> outcomes;
  outcomes.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    if (config.base.cancel != nullptr && config.base.cancel->stop_requested()) {
      break;  // finished repeats only; a partial bisection is not resumable
    }
    const std::uint64_t r =
        config.repeat_indices.empty() ? w : config.repeat_indices[w];
    ThresholdSearchConfig repeat_cfg = config.base;
    repeat_cfg.seed = stats::mix64(config.base.seed, r);
    // The per-repeat cancel stays wired so a mid-bisection SIGINT still
    // stops promptly — but a repeat it interrupted is discarded below, not
    // reported as finished.
    repeat_cfg.progress = {};
    const double q = find_threshold(estimate, repeat_cfg);
    if (config.base.cancel != nullptr && config.base.cancel->stop_requested()) {
      break;  // this repeat was cut short mid-bisection; drop it
    }
    outcomes.push_back(ThresholdOutcome{r, q});
    if (config.on_repeat) {
      config.on_repeat(outcomes.back());
    }
    if (config.base.progress) {
      config.base.progress(w + 1, count);
    }
  }
  return outcomes;
}

}  // namespace fvc::sim
