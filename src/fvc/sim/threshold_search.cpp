#include "fvc/sim/threshold_search.hpp"

#include <stdexcept>

#include "fvc/stats/rng.hpp"

namespace fvc::sim {

double find_threshold(const ProbabilityAt& estimate, const ThresholdSearchConfig& config) {
  if (!(config.q_lo < config.q_hi)) {
    throw std::invalid_argument("find_threshold: need q_lo < q_hi");
  }
  if (!(config.target > 0.0) || !(config.target < 1.0)) {
    throw std::invalid_argument("find_threshold: target must be in (0, 1)");
  }
  if (config.iterations < 1) {
    throw std::invalid_argument("find_threshold: need at least one iteration");
  }
  if (!estimate) {
    throw std::invalid_argument("find_threshold: estimator must be callable");
  }
  double lo = config.q_lo;
  double hi = config.q_hi;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double p =
        estimate(mid, stats::mix64(config.seed, static_cast<std::uint64_t>(iter)));
    if (p < config.target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace fvc::sim
