#include "fvc/sim/threshold_search.hpp"

#include <stdexcept>

#include "fvc/obs/trace.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

double find_threshold(const ProbabilityAt& estimate, const ThresholdSearchConfig& config) {
  if (!(config.q_lo < config.q_hi)) {
    throw std::invalid_argument("find_threshold: need q_lo < q_hi");
  }
  if (!(config.target > 0.0) || !(config.target < 1.0)) {
    throw std::invalid_argument("find_threshold: target must be in (0, 1)");
  }
  if (config.iterations < 1) {
    throw std::invalid_argument("find_threshold: need at least one iteration");
  }
  if (!estimate) {
    throw std::invalid_argument("find_threshold: estimator must be callable");
  }
  double lo = config.q_lo;
  double hi = config.q_hi;
  for (int iter = 0; iter < config.iterations; ++iter) {
    if (config.cancel != nullptr && config.cancel->stop_requested()) {
      break;  // return the bracket narrowed so far
    }
    const double mid = 0.5 * (lo + hi);
    double p = 0.0;
    {
      const obs::TraceScope scope("threshold.step", obs::TraceCategory::kScan,
                                  "step", static_cast<std::uint64_t>(iter));
      p = estimate(mid, stats::mix64(config.seed, static_cast<std::uint64_t>(iter)));
    }
    if (p < config.target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (config.progress) {
      config.progress(static_cast<std::size_t>(iter) + 1,
                      static_cast<std::size_t>(config.iterations));
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace fvc::sim
