/// \file thread_pool.hpp
/// \brief Minimal work-sharing parallel-for for Monte-Carlo trials.
///
/// Trials are embarrassingly parallel and independently seeded, so a
/// shared atomic cursor is all the scheduling needed.  Results are written
/// into caller-owned per-index slots, which keeps the engine deterministic
/// regardless of thread count.
///
/// Observability: the metered overload fills an `obs`-style `PoolMetrics`
/// — per-worker task counts and busy time, plus the wall time of the
/// whole parallel section — so utilization (busy / (workers * wall)) and
/// imbalance are visible in exported metrics.  The unmetered overload
/// takes the exact same code path with a null metrics pointer: no clock
/// calls per task, no overhead.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fvc::obs {
class MetricsNode;  // fvc/obs/run_metrics.hpp
}

namespace fvc::sim {

/// Number of worker threads to use by default: hardware concurrency,
/// clamped to [1, 64].
[[nodiscard]] std::size_t default_thread_count();

/// Utilization metrics of one parallel_for section.  Filled only by the
/// metered overload; per-worker slots are written by their own worker and
/// aggregated after the join, so no synchronization is involved.
struct PoolMetrics {
  struct Worker {
    std::uint64_t tasks = 0;    ///< indices this worker claimed
    std::uint64_t busy_ns = 0;  ///< wall time inside fn(i)
  };
  std::uint64_t wall_ns = 0;    ///< whole-section wall time (fork to join)
  std::size_t requested_threads = 0;  ///< caller's thread argument
  std::vector<Worker> workers;  ///< one entry per actual worker

  [[nodiscard]] std::uint64_t total_tasks() const {
    std::uint64_t t = 0;
    for (const Worker& w : workers) {
      t += w.tasks;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t total_busy_ns() const {
    std::uint64_t t = 0;
    for (const Worker& w : workers) {
      t += w.busy_ns;
    }
    return t;
  }
  /// Total idle time: worker-seconds the section held but did not use.
  [[nodiscard]] std::uint64_t total_idle_ns() const {
    const std::uint64_t capacity = wall_ns * workers.size();
    const std::uint64_t busy = total_busy_ns();
    return capacity > busy ? capacity - busy : 0;
  }
};

/// Run `fn(i)` for every i in [0, count) across `threads` workers.  Indices
/// are claimed from an atomic cursor, so work is balanced even when trial
/// costs vary (early-exit trials are much cheaper than full scans).  The
/// first exception thrown by any worker is rethrown on the caller's thread
/// after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/// Metered variant: additionally fills `metrics` (when non-null) with
/// per-worker busy time and task counts.  Scheduling and results are
/// identical to the unmetered overload.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn, PoolMetrics* metrics);

/// Export pool utilization into a metrics node: `workers`, `tasks`,
/// `busy_ns`, `idle_ns`, `utilization`, plus a per-worker `tasks_per_worker`
/// histogram (imbalance shows up as spread across buckets).
void describe(const PoolMetrics& pool, obs::MetricsNode& node);

}  // namespace fvc::sim
