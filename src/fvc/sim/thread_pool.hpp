/// \file thread_pool.hpp
/// \brief Minimal work-sharing parallel-for for Monte-Carlo trials.
///
/// Trials are embarrassingly parallel and independently seeded, so a
/// shared atomic cursor is all the scheduling needed.  Results are written
/// into caller-owned per-index slots, which keeps the engine deterministic
/// regardless of thread count.

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fvc::sim {

/// Number of worker threads to use by default: hardware concurrency,
/// clamped to [1, 64].
[[nodiscard]] std::size_t default_thread_count();

/// Run `fn(i)` for every i in [0, count) across `threads` workers.  Indices
/// are claimed from an atomic cursor, so work is balanced even when trial
/// costs vary (early-exit trials are much cheaper than full scans).  The
/// first exception thrown by any worker is rethrown on the caller's thread
/// after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace fvc::sim
