/// \file thread_pool.hpp
/// \brief Minimal work-sharing parallel-for built on blocked work-claiming.
///
/// Workers claim contiguous index *blocks* of `grain` indices from a shared
/// atomic cursor.  A block is the scheduling unit: one callback invocation,
/// one metrics clock pair, one trace slice — so the per-index cost of the
/// scheduler is `1/grain` atomics and virtual calls, and adjacent indices
/// land on the same worker (contiguous writes, no false sharing on
/// neighbouring result slots).  Trials are embarrassingly parallel and
/// independently seeded, so results written into caller-owned per-index (or
/// per-block) slots keep the engine deterministic regardless of thread
/// count or grain.
///
/// Per-index workloads (Monte-Carlo trials, whose unit costs vary wildly
/// and whose per-unit cost dwarfs one atomic claim) pass grain 1
/// explicitly; grid-row scans use grain 0 to get `choose_grain` (see
/// parallel_region.hpp): at 64-row grids the per-row claim overhead is what
/// made 4 threads *slower* than 1 (BENCH_grid_eval.json before the blocked
/// scheduler).  The historical per-index `parallel_for(count, threads, fn)`
/// adapter has been removed — `parallel_for_blocked` is the only entry
/// point.
///
/// Observability: the metered overloads fill an `obs`-style `PoolMetrics`
/// — per-worker block/task counts and busy time, the grain used, plus the
/// wall time of the whole parallel section — so utilization
/// (busy / (workers * wall)) and imbalance are visible in exported metrics.
/// The unmetered overloads take the exact same code path with a null
/// metrics pointer: no clock calls per block, no overhead.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fvc::obs {
class MetricsNode;  // fvc/obs/run_metrics.hpp
}

namespace fvc::sim {

/// Number of worker threads to use by default: hardware concurrency,
/// clamped to [1, 64].
[[nodiscard]] std::size_t default_thread_count();

/// Blocks each worker should get a chance to claim when work is split
/// evenly: enough slack to rebalance when block costs vary, small enough
/// that the per-block claim cost stays negligible.
inline constexpr std::size_t kGrainOversubscribe = 4;

/// Block grain for `count` indices over `threads` workers:
/// `count / (threads * kGrainOversubscribe)`, floored at `min_grain`
/// (and always >= 1).  `min_grain` is the caller's lever: row scans pass 1
/// (rows are cheap and plentiful), workloads with a known minimum useful
/// chunk pass it explicitly, and the CLI's `--grain` pins the grain
/// outright instead of going through this heuristic.
[[nodiscard]] std::size_t choose_grain(std::size_t count, std::size_t threads,
                                       std::size_t min_grain = 1);

/// Utilization metrics of one parallel section.  Filled only by the
/// metered overloads; per-worker slots are written by their own worker and
/// aggregated after the join, so no synchronization is involved.
struct PoolMetrics {
  struct Worker {
    std::uint64_t tasks = 0;    ///< indices this worker executed
    std::uint64_t blocks = 0;   ///< cursor claims that held those indices
    std::uint64_t busy_ns = 0;  ///< wall time inside the callback
  };
  std::uint64_t wall_ns = 0;    ///< whole-section wall time (fork to join)
  std::size_t requested_threads = 0;  ///< caller's thread argument
  std::size_t grain = 0;        ///< block grain the section scheduled with
  std::vector<Worker> workers;  ///< one entry per actual worker

  [[nodiscard]] std::uint64_t total_tasks() const {
    std::uint64_t t = 0;
    for (const Worker& w : workers) {
      t += w.tasks;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t total_blocks() const {
    std::uint64_t t = 0;
    for (const Worker& w : workers) {
      t += w.blocks;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t total_busy_ns() const {
    std::uint64_t t = 0;
    for (const Worker& w : workers) {
      t += w.busy_ns;
    }
    return t;
  }
  /// Total idle time: worker-seconds the section held but did not use.
  /// Degenerate sections (no workers ran, zero wall time) and timer skew
  /// (per-block busy sums exceeding the section capacity by a clock
  /// quantum) saturate to 0 instead of wrapping around.
  [[nodiscard]] std::uint64_t total_idle_ns() const {
    if (workers.empty() || wall_ns == 0) {
      return 0;
    }
    const std::uint64_t capacity = wall_ns * workers.size();
    const std::uint64_t busy = total_busy_ns();
    return capacity > busy ? capacity - busy : 0;
  }
  /// busy / (workers * wall) in [0, 1]; 0 for degenerate sections (the
  /// 0/0 case), clamped at 1 under timer skew.
  [[nodiscard]] double utilization() const {
    const double capacity =
        static_cast<double>(wall_ns) * static_cast<double>(workers.size());
    if (capacity <= 0.0) {
      return 0.0;
    }
    const double u = static_cast<double>(total_busy_ns()) / capacity;
    return u < 1.0 ? u : 1.0;
  }
};

/// Block callback: run every index in [begin, end).  `worker` identifies
/// the executing worker (stable in [0, threads)), so callers can key
/// per-worker scratch or counter slots without thread-local state.
using ParallelBlockFn =
    std::function<void(std::size_t begin, std::size_t end, std::size_t worker)>;

/// Run `fn(begin, end, worker)` over [0, count) in contiguous blocks of
/// `grain` indices (the last block may be short; grain 0 means
/// `choose_grain(count, threads)`).  Blocks are claimed from an atomic
/// cursor in ascending order, so work still balances when block costs vary
/// while the scheduler touches the cursor only once per block.  With
/// threads == 1 the blocks run in ascending order on the calling thread.
/// The first exception thrown by any worker is rethrown on the caller's
/// thread after all workers join; remaining unclaimed blocks are dropped.
void parallel_for_blocked(std::size_t count, std::size_t threads, std::size_t grain,
                          const ParallelBlockFn& fn, PoolMetrics* metrics = nullptr);

/// Export pool utilization into a metrics node: `workers`, `tasks`,
/// `blocks`, `grain`, `busy_ns`, `idle_ns`, `utilization`, plus a
/// per-worker `tasks_per_worker` histogram (imbalance shows up as spread
/// across buckets).
void describe(const PoolMetrics& pool, obs::MetricsNode& node);

}  // namespace fvc::sim
