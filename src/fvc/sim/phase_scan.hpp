/// \file phase_scan.hpp
/// \brief Phase-transition scans around the CSA thresholds (the §VI-C
/// "gap" experiment).
///
/// For a grid of multipliers q, the scan dials the profile's weighted
/// sensing area to q * CSA_necessary(n, theta) and estimates the
/// probabilities of the three whole-grid events.  The paper predicts:
/// below q = 1 the necessary condition (hence coverage) fails with
/// probability bounded away from 0; above s_Sc (~2x s_Nc) full-view
/// coverage is achieved w.h.p.; in between the outcome depends on the
/// actual deployment.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/trial.hpp"

namespace fvc::sim {

/// One row of a phase scan.
struct PhasePoint {
  std::size_t index = 0;        ///< position in the q grid (the shard unit)
  double q = 0.0;               ///< multiplier of the necessary CSA
  double weighted_area = 0.0;   ///< realized s_c at this point
  GridEventsEstimate events;    ///< MC event probabilities
};

/// Scan configuration.
struct PhaseScanConfig {
  TrialConfig base;             ///< profile shape, n, theta, deployment
  std::vector<double> q_values; ///< multipliers of CSA_necessary
  std::size_t trials = 100;     ///< MC trials per point
  std::uint64_t master_seed = 1;
  std::size_t threads = 0;      ///< 0 = default_thread_count()
  /// Optional observability (see fvc/obs): when `metrics` is non-null each
  /// scan point fills a child node "q_<i>" (trial/engine/pool subtrees);
  /// when `cancel` fires, the scan stops after the current point and
  /// returns the points finished so far (possibly none); `progress` is
  /// reported trial-by-trial across the whole scan, as
  /// progress(trials finished so far, q_values.size() * trials).
  obs::MetricsNode* metrics = nullptr;
  obs::CancellationToken* cancel = nullptr;
  obs::ProgressFn progress;
  /// When non-empty, scan ONLY these q-grid indices (a shard of
  /// [0, q_values.size()), or the remainder of a resumed scan).  Point i
  /// keeps its seed mix64(master_seed, i) regardless of which process runs
  /// it, so disjoint subsets recombine into the unsharded scan bit-exactly.
  /// Indices must be strictly increasing and < q_values.size().
  std::span<const std::uint64_t> point_indices;
  /// Called after each finished point (the checkpoint hook).  Points run
  /// sequentially, so no locking is involved.
  std::function<void(const PhasePoint& point)> on_point;
};

/// Run the scan.  The base profile's *shape* (group fractions, fov values
/// and radius ratios) is preserved; only the overall sensing-area scale is
/// dialed per point.
[[nodiscard]] std::vector<PhasePoint> run_phase_scan(const PhaseScanConfig& cfg);

/// Checkpoint payload codec for one scan point: [q, weighted_area, then
/// the three (successes, trials) pairs of the events].  The layout is part
/// of the "phase" entry of the fvc.checkpoint/1 format; the point's index
/// travels next to the payload in the checkpoint unit itself.
[[nodiscard]] std::vector<double> encode_phase_point(const PhasePoint& point);
/// Inverse of `encode_phase_point` (index comes from the checkpoint unit);
/// throws std::invalid_argument on a malformed payload.
[[nodiscard]] PhasePoint decode_phase_point(std::uint64_t index,
                                            std::span<const double> payload);

}  // namespace fvc::sim
