#include "fvc/sim/trial.hpp"

#include <stdexcept>

#include "fvc/core/full_view.hpp"
#include "fvc/core/grid_eval.hpp"
#include "fvc/deploy/poisson.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/obs/trace.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

core::DenseGrid TrialConfig::grid() const {
  if (grid_side.has_value()) {
    return core::DenseGrid(*grid_side);
  }
  return core::DenseGrid::for_network_size(n);
}

void validate(const TrialConfig& cfg) {
  if (cfg.n < 3) {
    throw std::invalid_argument("TrialConfig: n must be >= 3");
  }
  core::validate_theta(cfg.theta);
  if (cfg.grid_side.has_value() && *cfg.grid_side == 0) {
    throw std::invalid_argument("TrialConfig: grid_side must be >= 1");
  }
}

core::Network deploy(const TrialConfig& cfg, std::uint64_t seed) {
  validate(cfg);
  stats::Pcg32 rng = stats::make_child_rng(seed, 0);
  switch (cfg.deployment) {
    case Deployment::kUniform:
      return deploy::deploy_uniform_network(cfg.profile, cfg.n, rng);
    case Deployment::kPoisson:
      return deploy::deploy_poisson_network(cfg.profile, static_cast<double>(cfg.n), rng);
  }
  throw std::logic_error("deploy: unknown deployment scheme");
}

TrialEvents run_trial_events(const TrialConfig& cfg, std::uint64_t seed) {
  return run_trial_events(cfg, seed, nullptr);
}

TrialEvents run_trial_events(const TrialConfig& cfg, std::uint64_t seed,
                             TrialMetrics* metrics) {
  const core::Network net = deploy(cfg, seed);
  const core::DenseGrid grid = cfg.grid();
  // Batched row evaluation (trials are already parallel across workers, so
  // the per-trial scan stays serial).  Per-point nesting is preserved: a
  // necessary-condition failure anywhere fails everything, and predicates
  // already falsified on earlier rows are skipped.
  const core::GridEvalEngine engine(net, grid, cfg.theta);
  core::GridEvalScratch scratch;
  if (metrics != nullptr) {
    metrics->engine_build_ns += engine.build_ns();
    metrics->kernel = engine.kernel();
    scratch.counters = &metrics->engine;
  }
  TrialEvents ev{true, true, true};
  const obs::TraceScope scan_scope("engine.scan", obs::TraceCategory::kEngine,
                                   "points", grid.size(), "kernel_lanes",
                                   core::kernel_lanes(engine.kernel()));
  for (std::size_t row = 0; row < engine.rows(); ++row) {
    const core::GridRowEvents re =
        engine.row_events(row, scratch, ev.all_full_view, ev.all_sufficient);
    if (metrics != nullptr) {
      ++metrics->rows_scanned;
    }
    if (!re.all_necessary) {
      if (metrics != nullptr) {
        metrics->early_exit = true;
      }
      return {false, false, false};
    }
    ev.all_full_view = ev.all_full_view && re.all_full_view;
    ev.all_sufficient = ev.all_sufficient && re.all_sufficient;
  }
  return ev;
}

core::RegionCoverageStats run_trial_region(const TrialConfig& cfg, std::uint64_t seed) {
  const core::Network net = deploy(cfg, seed);
  return core::evaluate_region(net, cfg.grid(), cfg.theta);
}

}  // namespace fvc::sim
