#include "fvc/sim/trial.hpp"

#include <stdexcept>
#include <vector>

#include "fvc/core/full_view.hpp"
#include "fvc/deploy/poisson.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/stats/rng.hpp"

namespace fvc::sim {

core::DenseGrid TrialConfig::grid() const {
  if (grid_side.has_value()) {
    return core::DenseGrid(*grid_side);
  }
  return core::DenseGrid::for_network_size(n);
}

void validate(const TrialConfig& cfg) {
  if (cfg.n < 3) {
    throw std::invalid_argument("TrialConfig: n must be >= 3");
  }
  core::validate_theta(cfg.theta);
  if (cfg.grid_side.has_value() && *cfg.grid_side == 0) {
    throw std::invalid_argument("TrialConfig: grid_side must be >= 1");
  }
}

core::Network deploy(const TrialConfig& cfg, std::uint64_t seed) {
  validate(cfg);
  stats::Pcg32 rng = stats::make_child_rng(seed, 0);
  switch (cfg.deployment) {
    case Deployment::kUniform:
      return deploy::deploy_uniform_network(cfg.profile, cfg.n, rng);
    case Deployment::kPoisson:
      return deploy::deploy_poisson_network(cfg.profile, static_cast<double>(cfg.n), rng);
  }
  throw std::logic_error("deploy: unknown deployment scheme");
}

TrialEvents run_trial_events(const TrialConfig& cfg, std::uint64_t seed) {
  const core::Network net = deploy(cfg, seed);
  const core::DenseGrid grid = cfg.grid();
  TrialEvents ev{true, true, true};
  std::vector<double> dirs;
  const std::size_t total = grid.size();
  for (std::size_t i = 0; i < total; ++i) {
    const geom::Vec2 p = grid.point(i);
    net.viewed_directions_into(p, dirs);
    // Per-point nesting: a necessary-condition failure fails everything.
    if (!core::meets_necessary_condition(dirs, cfg.theta)) {
      return {false, false, false};
    }
    if (ev.all_full_view && !core::full_view_covered(dirs, cfg.theta).covered) {
      ev.all_full_view = false;
      ev.all_sufficient = false;  // sufficient implies full view
    }
    if (ev.all_sufficient && !core::meets_sufficient_condition(dirs, cfg.theta)) {
      ev.all_sufficient = false;
    }
  }
  return ev;
}

core::RegionCoverageStats run_trial_region(const TrialConfig& cfg, std::uint64_t seed) {
  const core::Network net = deploy(cfg, seed);
  return core::evaluate_region(net, cfg.grid(), cfg.theta);
}

}  // namespace fvc::sim
