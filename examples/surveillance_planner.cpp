/// Surveillance planner: inverse design from the CSA theorems.
///
/// Scenario: an estate-surveillance deployment (the paper's Section I
/// motivation) wants full-view coverage with effective angle 45 deg so
/// every intruder's face is captured near-frontally.  Cameras are dropped
/// from the air — uniform random deployment.  Given a camera budget, what
/// hardware is needed?  Given the hardware, how many cameras?  The example
/// answers both with Theorems 1-2 and verifies the plan by simulation.

#include <cmath>
#include <iostream>

#include "fvc/analysis/csa.hpp"
#include "fvc/analysis/planner.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/table.hpp"
#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/thread_pool.hpp"

int main() {
  using namespace fvc;
  using analysis::Condition;
  const double theta = geom::kPi / 4.0;  // 45 deg face-capture guarantee
  const double fov = geom::kHalfPi;      // 90 deg lenses

  std::cout << "=== Surveillance planner: full-view coverage with theta = 45 deg ===\n\n";

  // Question 1: with a budget of n cameras, what sensing radius is needed?
  std::cout << "--- Q1: radius required per budget (fov = 90 deg, 1.5x margin over the\n"
               "        sufficient CSA, so coverage is w.h.p. guaranteed) ---\n";
  report::Table t1({"budget n", "sufficient CSA", "required radius"});
  for (std::size_t n : {500u, 1000u, 2000u, 5000u}) {
    const double radius =
        analysis::required_radius(Condition::kSufficient, static_cast<double>(n), theta,
                                  fov, 1.5);
    t1.add_row({std::to_string(n),
                report::fmt_sci(analysis::csa_sufficient(static_cast<double>(n), theta)),
                report::fmt(radius, 4)});
  }
  t1.print(std::cout);

  // Question 2: hardware is fixed (r = 0.1, fov = 90 deg); how many cameras?
  const auto hardware = core::HeterogeneousProfile::homogeneous(0.1, fov);
  std::cout << "\n--- Q2: population required for fixed hardware (r = 0.1, fov = 90 deg) ---\n";
  report::Table t2({"margin", "necessary-cond. population", "sufficient-cond. population"});
  for (double margin : {1.0, 1.5, 2.0}) {
    const std::size_t n_nec = analysis::required_population(Condition::kNecessary,
                                                            hardware, theta, margin, 3,
                                                            100000000);
    const std::size_t n_suf = analysis::required_population(Condition::kSufficient,
                                                            hardware, theta, margin, 3,
                                                            100000000);
    t2.add_row({report::fmt(margin, 1), std::to_string(n_nec), std::to_string(n_suf)});
  }
  t2.print(std::cout);

  // Question 3: what face-capture quality can a fleet of these cameras
  // afford?  The planner reports infeasibility honestly: 1500 such cameras
  // cannot guarantee full-view coverage at ANY effective angle.
  std::cout << "\n--- Q3: best quality for a fleet of this hardware ---\n";
  for (double fleet_size : {1500.0, 4000.0, 10000.0}) {
    try {
      const double best_theta = analysis::best_effective_angle(
          Condition::kSufficient, hardware, fleet_size, 1.0, 0.05, geom::kPi);
      std::cout << "  n = " << fleet_size << ": smallest achievable theta = "
                << report::fmt(best_theta, 3) << " rad ("
                << report::fmt(best_theta * 180.0 / geom::kPi, 1) << " deg)\n";
    } catch (const std::runtime_error&) {
      std::cout << "  n = " << fleet_size
                << ": infeasible — cannot guarantee full-view coverage at any theta\n";
    }
  }

  // Verify the Q2 sufficient-condition plan (margin 1.5) by simulation.
  const std::size_t n_plan = analysis::required_population(Condition::kSufficient,
                                                           hardware, theta, 1.5, 3,
                                                           100000000);
  std::cout << "\n--- Verification: simulate the margin-1.5 sufficient plan (n = " << n_plan
            << ") ---\n";
  sim::TrialConfig cfg{hardware, n_plan, theta, sim::Deployment::kUniform, std::nullopt};
  cfg.grid_side = 64;  // 4096-point audit grid keeps the example interactive
  const auto est = sim::estimate_grid_events(cfg, 10, 777, sim::default_thread_count());
  std::cout << "P(region full-view covered) = " << report::fmt(est.full_view.p(), 3)
            << "  (10 trials on a 64x64 audit grid)\n"
            << (est.full_view.p() > 0.8 ? "plan verified." : "plan FAILED verification!")
            << "\n";
  return 0;
}
