/// Wildlife monitor: a full workflow on a realistic scenario.
///
/// A reserve wants to photograph an endangered animal's FACE whenever it is
/// inside the monitored square (the paper's animal-protection motivation).
/// Cameras are air-dropped (uniform random).  The workflow:
///   1. pick a face-recognition quality theta from the recognisers' specs,
///   2. plan the fleet with the CSA theorems,
///   3. deploy and audit the realized network,
///   4. list the worst coverage holes with witness directions so rangers
///      can add cameras manually.

#include <algorithm>
#include <iostream>
#include <vector>

#include "fvc/analysis/csa.hpp"
#include "fvc/analysis/planner.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/core/region_coverage.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/svg.hpp"
#include "fvc/report/table.hpp"
#include "fvc/stats/rng.hpp"

#include <fstream>

int main() {
  using namespace fvc;
  using analysis::Condition;

  // 1. The recognition model works up to ~50 deg off-frontal views.
  const double theta = 50.0 * geom::kPi / 180.0;
  std::cout << "=== Wildlife monitor ===\n"
            << "recognition tolerance theta = 50 deg\n\n";

  // 2. Plan: trap cameras have 60-degree lenses; deploy 800 of them with a
  //    1.2x margin over the sufficient CSA.
  const double fov = geom::kPi / 3.0;
  const std::size_t n = 800;
  const double radius =
      analysis::required_radius(Condition::kSufficient, static_cast<double>(n), theta,
                                fov, 1.2);
  std::cout << "plan: " << n << " cameras, fov = 60 deg, required radius = "
            << report::fmt(radius, 4) << " (region sides)\n";

  // 3. Deploy once (one real airdrop) and audit on a fine grid.
  const auto profile = core::HeterogeneousProfile::homogeneous(radius, fov);
  stats::Pcg32 rng(20260706);
  const core::Network net = deploy::deploy_uniform_network(profile, n, rng);
  const core::DenseGrid grid(48);
  const auto stats = core::evaluate_region(net, grid, theta);

  std::cout << "\naudit over " << grid.size() << " probe points:\n"
            << "  1-covered        : " << report::fmt(stats.fraction_covered_1() * 100, 1)
            << "%\n"
            << "  full-view covered: " << report::fmt(stats.fraction_full_view() * 100, 1)
            << "%\n"
            << "  worst angular gap: " << report::fmt(stats.max_max_gap, 3)
            << " rad (full view needs <= " << report::fmt(2.0 * theta, 3) << ")\n";

  // 4. Rank the holes: probe points that are NOT full-view covered, sorted
  //    by how badly they fail, with the unwatched direction as a witness.
  struct Hole {
    geom::Vec2 point;
    double gap;
    double witness;
  };
  std::vector<Hole> holes;
  grid.for_each([&](std::size_t, const geom::Vec2& p) {
    const auto r = core::full_view_covered(net, p, theta);
    if (!r.covered) {
      holes.push_back({p, r.max_gap, r.witness_unsafe_direction.value_or(0.0)});
    }
  });
  std::sort(holes.begin(), holes.end(),
            [](const Hole& a, const Hole& b) { return a.gap > b.gap; });

  if (holes.empty()) {
    std::cout << "\nno holes: the whole reserve is full-view covered.\n";
  } else {
    std::cout << "\n" << holes.size() << " probe points are not full-view covered; "
              << "worst five (place a camera watching the witness direction):\n";
    report::Table table({"location", "angular gap", "unwatched facing direction"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, holes.size()); ++i) {
      table.add_row({report::fmt_point(holes[i].point.x, holes[i].point.y, 3),
                     report::fmt(holes[i].gap, 3), report::fmt(holes[i].witness, 3)});
    }
    table.print(std::cout);
  }

  // 5. Export a figure for the rangers: sectors + hole markers as SVG.
  {
    report::NetworkSvgOptions svg;
    svg.hole_theta = theta;
    svg.hole_grid_side = 48;
    std::ofstream file("/tmp/wildlife_monitor.svg");
    if (file) {
      report::render_network_svg(file, net, svg);
      std::cout << "\ncoverage figure written to /tmp/wildlife_monitor.svg\n";
    }
  }

  // Closing note: what the thresholds said in advance.
  const double s_c = profile.weighted_sensing_area();
  std::cout << "\nCSA check: s_c = " << report::fmt_sci(s_c) << " vs s_Nc = "
            << report::fmt_sci(analysis::csa_necessary(static_cast<double>(n), theta))
            << " and s_Sc = "
            << report::fmt_sci(analysis::csa_sufficient(static_cast<double>(n), theta))
            << "\n(the plan sits above the sufficient threshold by design).\n";
  return 0;
}
