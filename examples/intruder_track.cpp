/// Intruder tracking: audit face capture along a moving object's path.
///
/// Full-view coverage is a worst-case guarantee over FACING directions;
/// for a real intruder walking through the region, the operative questions
/// are: how much of the path has the guarantee, how often is the actual
/// walking direction captured, and how quickly is the first face shot
/// taken?  This example runs those audits over many random walks and
/// compares a CSA-provisioned fleet against an under-provisioned one.

#include <iostream>

#include "fvc/analysis/csa.hpp"
#include "fvc/analysis/planner.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/table.hpp"
#include "fvc/stats/rng.hpp"
#include "fvc/stats/summary.hpp"
#include "fvc/track/trajectory.hpp"

int main() {
  using namespace fvc;
  using analysis::Condition;
  const double theta = geom::kPi / 3.0;  // 60-degree capture tolerance
  const std::size_t n = 400;
  const double fov = 2.0;

  std::cout << "=== Intruder tracking: face capture along random walks ===\n"
            << "n = " << n << " cameras, theta = 60 deg, 40 random intruder walks each\n\n";

  // Margins are multiples of the NECESSARY CSA: note how strong per-point
  // coverage already is near the threshold — the grid-level CSA events are
  // about the worst point, while a walking intruder samples typical points.
  struct Fleet {
    const char* name;
    double margin;  // multiple of the necessary CSA
  };
  report::Table table({"fleet", "path full-view %", "walking-direction captured %",
                       "mean first-capture sample"});

  for (const Fleet fleet : {Fleet{"skeleton fleet (0.05x s_Nc)", 0.05},
                            Fleet{"sparse fleet (0.25x s_Nc)", 0.25},
                            Fleet{"CSA-provisioned (2x s_Nc)", 2.0}}) {
    const double radius = analysis::required_radius(
        Condition::kNecessary, static_cast<double>(n), theta, fov, fleet.margin);
    stats::Pcg32 rng(31415);
    const core::Network net = deploy::deploy_uniform_network(
        core::HeterogeneousProfile::homogeneous(radius, fov), n, rng);

    stats::OnlineStats full_view_frac;
    stats::OnlineStats facing_frac;
    stats::OnlineStats first_capture;
    for (int walk = 0; walk < 40; ++walk) {
      const track::Trajectory path = track::random_waypoint_path(rng, 4, 0.02);
      const track::TrackReport report = track::evaluate_trajectory(net, path, theta);
      full_view_frac.add(report.full_view_fraction());
      facing_frac.add(report.facing_captured_fraction());
      if (report.first_capture.has_value()) {
        first_capture.add(static_cast<double>(*report.first_capture));
      }
    }
    table.add_row({fleet.name, report::fmt(full_view_frac.mean() * 100.0, 1),
                   report::fmt(facing_frac.mean() * 100.0, 1),
                   first_capture.count() > 0 ? report::fmt(first_capture.mean(), 1)
                                             : std::string("never")});
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table: the walking-direction capture rate always exceeds the\n"
         "full-view rate (full view guards EVERY direction, the walk only needs its\n"
         "own), and the CSA-provisioned fleet takes its first face shot almost\n"
         "immediately. The CSA margin translates directly into operational tracking\n"
         "performance.\n";
  return 0;
}
