/// Deployment comparison: uniform vs Poisson vs triangular lattice.
///
/// The same camera hardware is placed three ways; the example reports the
/// fraction of the region meeting each coverage notion, illustrating the
/// paper's Section II/V models and the Section VII-C lattice baseline.

#include <iostream>

#include "fvc/analysis/poisson_theory.hpp"
#include "fvc/analysis/uniform_theory.hpp"
#include "fvc/core/region_coverage.hpp"
#include "fvc/deploy/lattice.hpp"
#include "fvc/deploy/poisson.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/table.hpp"
#include "fvc/stats/rng.hpp"

int main() {
  using namespace fvc;
  const double theta = geom::kPi / 4.0;
  const double radius = 0.22;
  const double fov = geom::kHalfPi;
  const auto profile = core::HeterogeneousProfile::homogeneous(radius, fov);
  const core::DenseGrid grid(30);
  stats::Pcg32 rng(42);

  // Lattice sized to the same camera budget as the random schemes.
  deploy::LatticeConfig lat;
  lat.edge = 0.125;
  lat.radius = radius;
  lat.fov = fov;
  lat.per_site = deploy::per_site_for_fov(fov);  // 4 cameras per site
  const core::Network lattice = deploy::deploy_triangular_lattice_network(lat);
  const std::size_t budget = lattice.size();

  const core::Network uniform = deploy::deploy_uniform_network(profile, budget, rng);
  const core::Network poisson =
      deploy::deploy_poisson_network(profile, static_cast<double>(budget), rng);

  std::cout << "=== Deployment comparison at equal hardware (budget = " << budget
            << " cameras, theta = 45 deg) ===\n\n";

  report::Table table({"scheme", "cameras", "frac 1-covered", "frac necessary",
                       "frac full view", "frac sufficient"});
  struct Row {
    const char* name;
    const core::Network* net;
  };
  for (const Row row : {Row{"uniform random", &uniform}, Row{"Poisson process", &poisson},
                        Row{"triangular lattice", &lattice}}) {
    const auto st = core::evaluate_region(*row.net, grid, theta);
    table.add_row({row.name, std::to_string(row.net->size()),
                   report::fmt(st.fraction_covered_1(), 3),
                   report::fmt(st.fraction_necessary(), 3),
                   report::fmt(st.fraction_full_view(), 3),
                   report::fmt(st.fraction_sufficient(), 3)});
  }
  table.print(std::cout);

  // Closed-form expectations for the random schemes (Sections III & V).
  std::cout << "\nclosed-form expected fractions (necessary condition):\n"
            << "  uniform (eq. 2 complement): "
            << report::fmt(analysis::point_success_necessary(profile, budget, theta), 3)
            << "\n"
            << "  Poisson (Theorem 3):        "
            << report::fmt(analysis::prob_point_necessary_poisson(
                               profile, static_cast<double>(budget), theta),
                           3)
            << "\n\n"
            << "The lattice wins at equal budget — deterministic placement needs no\n"
               "stochastic slack — which is exactly why the paper quantifies the\n"
               "random-deployment penalty via the CSA.\n";
  return 0;
}
