/// Heterogeneous fleet: mixing high-end and low-end cameras.
///
/// Scenario: the budget buys either 400 premium cameras, 400 budget
/// cameras, or a 30/70 mix.  The paper's CSA theory says only the weighted
/// sensing area s_c = sum c_y s_y matters under uniform deployment — the
/// example computes each fleet's s_c, predicts the outcome by comparing
/// against the CSA thresholds, and verifies by simulation.

#include <iostream>

#include "fvc/analysis/csa.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/table.hpp"
#include "fvc/sim/monte_carlo.hpp"
#include "fvc/sim/thread_pool.hpp"

int main() {
  using namespace fvc;
  using core::CameraGroupSpec;
  using core::HeterogeneousProfile;

  const double theta = geom::kHalfPi;
  const std::size_t n = 400;
  const double nn = static_cast<double>(n);

  // Premium: long range, wide lens.  Budget: short range, narrow lens.
  const CameraGroupSpec premium{1.0, 0.28, 2.4};
  const CameraGroupSpec budget{1.0, 0.10, 1.2};

  struct Fleet {
    const char* name;
    HeterogeneousProfile profile;
  };
  const Fleet fleets[] = {
      {"all premium", HeterogeneousProfile({premium})},
      {"all budget", HeterogeneousProfile({budget})},
      {"30% premium / 70% budget",
       HeterogeneousProfile({CameraGroupSpec{0.3, premium.radius, premium.fov},
                             CameraGroupSpec{0.7, budget.radius, budget.fov}})},
  };

  const double csa_nec = analysis::csa_necessary(nn, theta);
  const double csa_suf = analysis::csa_sufficient(nn, theta);
  std::cout << "=== Heterogeneous fleets at n = " << n << ", theta = pi/2 ===\n"
            << "thresholds: s_Nc = " << report::fmt_sci(csa_nec)
            << ", s_Sc = " << report::fmt_sci(csa_suf) << "\n\n";

  report::Table table({"fleet", "s_c", "s_c/s_Nc", "prediction", "P(full view) simulated"});
  std::size_t idx = 0;
  for (const Fleet& f : fleets) {
    const double s_c = f.profile.weighted_sensing_area();
    const char* prediction = s_c < csa_nec  ? "fails (below necessary)"
                             : s_c > csa_suf ? "succeeds (above sufficient)"
                                             : "deployment-dependent band";
    sim::TrialConfig cfg{f.profile, n, theta, sim::Deployment::kUniform, std::nullopt};
    const auto est =
        sim::estimate_grid_events(cfg, 30, 0xFEE7 + idx++, sim::default_thread_count());
    table.add_row({f.name, report::fmt_sci(s_c), report::fmt(s_c / csa_nec, 2),
                   prediction, report::fmt(est.full_view.p(), 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table: the mixed fleet's behaviour is fully determined by its\n"
         "weighted sensing area — the paper's heterogeneity result (Definition 2 and\n"
         "Section VI-A).  Mixing hardware is fine as long as s_c clears the threshold.\n";
  return 0;
}
