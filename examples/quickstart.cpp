/// Quickstart: deploy a random camera network on the unit torus, ask
/// whether a point is full-view covered, and inspect why (or why not).
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "fvc/core/full_view.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/report/table.hpp"
#include "fvc/stats/rng.hpp"

int main() {
  using namespace fvc;

  // 1. Describe the camera fleet: 300 identical cameras, sensing radius
  //    0.15 (15% of the region side), 120-degree angle of view.
  const auto fleet = core::HeterogeneousProfile::homogeneous(0.15, 2.0 * geom::kPi / 3.0);
  std::cout << "fleet: 300 cameras, r = 0.15, fov = 120 deg, per-camera sensing area s = "
            << report::fmt(fleet.weighted_sensing_area(), 4) << "\n";

  // 2. Deploy them uniformly at random (fixed seed: reproducible).
  stats::Pcg32 rng(2024);
  const core::Network net = deploy::deploy_uniform_network(fleet, 300, rng);

  // 3. Check full-view coverage of the region centre with effective angle
  //    theta = pi/3: is every facing direction watched from within 60 deg?
  const geom::Vec2 target{0.5, 0.5};
  const double theta = geom::kPi / 3.0;
  const core::FullViewResult result = core::full_view_covered(net, target, theta);

  std::cout << "\ntarget (0.5, 0.5), theta = 60 deg:\n"
            << "  cameras covering the target : " << result.covering_count << "\n"
            << "  largest angular gap         : " << report::fmt(result.max_gap, 3)
            << " rad (full view needs <= " << report::fmt(2.0 * theta, 3) << ")\n"
            << "  full-view covered           : " << (result.covered ? "YES" : "NO")
            << "\n";
  if (!result.covered && result.witness_unsafe_direction) {
    std::cout << "  an unwatched facing direction: "
              << report::fmt(*result.witness_unsafe_direction, 3) << " rad\n";
  }

  // 4. The paper's two geometric conditions bracket the exact answer.
  std::cout << "  necessary condition (Sec III): "
            << (core::meets_necessary_condition(net, target, theta) ? "met" : "not met")
            << "\n"
            << "  sufficient condition (Sec IV): "
            << (core::meets_sufficient_condition(net, target, theta) ? "met" : "not met")
            << "\n";

  // 5. Sample a few more points to see how coverage varies over the region.
  report::Table table({"point", "covering cams", "max gap", "full view"});
  for (const geom::Vec2 p : {geom::Vec2{0.1, 0.1}, geom::Vec2{0.25, 0.75},
                             geom::Vec2{0.6, 0.4}, geom::Vec2{0.9, 0.9}}) {
    const auto r = core::full_view_covered(net, p, theta);
    table.add_row({report::fmt_point(p.x, p.y, 2),
                   std::to_string(r.covering_count), report::fmt(r.max_gap, 3),
                   r.covered ? "yes" : "no"});
  }
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}
