/// Barrier patrol: guard a border strip with full-view coverage.
///
/// Scenario: instead of full-view covering a whole region, a patrol wants
/// every intruder CROSSING a border strip to have their face captured —
/// full-view barrier coverage, the future-work topic of the paper's
/// conclusion.  The workflow: deploy a modest random fleet, check weak and
/// strong barrier coverage, visualize the strip, and patch the gaps with
/// the greedy repairer until the barrier is strong.

#include <iostream>

#include "fvc/barrier/barrier.hpp"
#include "fvc/core/full_view.hpp"
#include "fvc/deploy/uniform.hpp"
#include "fvc/geometry/angle.hpp"
#include "fvc/opt/greedy_repair.hpp"
#include "fvc/report/heatmap.hpp"
#include "fvc/report/table.hpp"
#include "fvc/stats/rng.hpp"

int main() {
  using namespace fvc;
  const double theta = geom::kPi / 3.0;  // 60-degree face guarantee

  // The strip to guard: a border band around y = 0.5.
  barrier::BarrierSpec strip;
  strip.y_lo = 0.45;
  strip.y_hi = 0.55;
  strip.columns = 48;
  strip.rows = 5;

  // A deliberately modest fleet: enough to ALMOST close the barrier.
  const auto profile = core::HeterogeneousProfile::homogeneous(0.14, 2.0);
  stats::Pcg32 rng(4242);
  const core::Network net = deploy::deploy_uniform_network(profile, 220, rng);

  std::cout << "=== Barrier patrol: strip y in [0.45, 0.55], theta = 60 deg ===\n\n";
  const barrier::BarrierResult before = barrier::evaluate_barrier(net, strip, theta);
  std::cout << "initial fleet (220 cameras):\n"
            << "  strip cells full-view covered: "
            << report::fmt(before.covered_fraction * 100, 1) << "%\n"
            << "  weak barrier (straight-line intruders):  "
            << (before.weak ? "HELD" : "BREACHED") << "\n"
            << "  strong barrier (any crossing path):      "
            << (before.strong ? "HELD" : "BREACHED") << "\n\n";

  // Visualize the strip: '@' cells are full-view covered.
  std::cout << "strip map before repair (top = y " << strip.y_hi << "):\n";
  {
    const auto mask = barrier::coverage_mask(net, strip, theta);
    for (std::size_t r = strip.rows; r-- > 0;) {
      for (std::size_t c = 0; c < strip.columns; ++c) {
        std::cout << (mask[r * strip.columns + c] ? '@' : '.');
      }
      std::cout << '\n';
    }
  }

  // Patch: repair only the strip (a dense grid over the band would be the
  // rigorous tool; the greedy repairer on a strip-bounding grid works well
  // in practice because its holes concentrate in the band).
  opt::RepairConfig patch;
  patch.theta = theta;
  patch.camera_radius = 0.14;
  patch.camera_fov = 2.0;
  patch.max_added = 300;

  // Repair against a grid restricted to the strip: reuse DenseGrid by
  // repairing the full square but ONLY until the barrier holds.
  std::vector<core::Camera> fleet(net.cameras().begin(), net.cameras().end());
  core::Network current = net;
  std::size_t added = 0;
  while (added < patch.max_added) {
    const barrier::BarrierResult r = barrier::evaluate_barrier(current, strip, theta);
    if (r.strong) {
      break;
    }
    // Find the worst strip cell and patch it, mirroring the repairer's
    // placement rule.
    const auto mask = barrier::coverage_mask(current, strip, theta);
    double worst_gap = -1.0;
    geom::Vec2 worst_point;
    double witness = 0.0;
    for (std::size_t rr = 0; rr < strip.rows; ++rr) {
      for (std::size_t cc = 0; cc < strip.columns; ++cc) {
        if (mask[rr * strip.columns + cc]) {
          continue;
        }
        const geom::Vec2 p = strip.probe(rr, cc);
        const auto fv = core::full_view_covered(current, p, theta);
        if (fv.max_gap > worst_gap) {
          worst_gap = fv.max_gap;
          worst_point = p;
          witness = fv.witness_unsafe_direction.value_or(0.0);
        }
      }
    }
    core::Camera cam;
    cam.position = geom::UnitTorus::wrap(
        worst_point + geom::Vec2::from_angle(witness) * (0.5 * patch.camera_radius));
    cam.orientation = geom::normalize_angle(witness + geom::kPi);
    cam.radius = patch.camera_radius;
    cam.fov = patch.camera_fov;
    fleet.push_back(cam);
    current = core::Network(fleet);
    ++added;
  }

  const barrier::BarrierResult after = barrier::evaluate_barrier(current, strip, theta);
  std::cout << "\nafter adding " << added << " patch cameras:\n"
            << "  strip cells full-view covered: "
            << report::fmt(after.covered_fraction * 100, 1) << "%\n"
            << "  weak barrier:   " << (after.weak ? "HELD" : "BREACHED") << "\n"
            << "  strong barrier: " << (after.strong ? "HELD" : "BREACHED") << "\n";

  std::cout << "\nstrip map after repair:\n";
  const auto mask = barrier::coverage_mask(current, strip, theta);
  for (std::size_t r = strip.rows; r-- > 0;) {
    for (std::size_t c = 0; c < strip.columns; ++c) {
      std::cout << (mask[r * strip.columns + c] ? '@' : '.');
    }
    std::cout << '\n';
  }
  std::cout << "\nGuarding a strip costs far less than the region-wide CSA — the\n"
               "barrier formulation the paper leaves to future work.\n";
  return 0;
}
